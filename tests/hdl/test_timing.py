"""Tests for timing checks and the +pre_16a_path compatibility switch."""

import pytest

from cadinterop.hdl.timing import (
    ALL_VERSIONS,
    SimulatorVersion,
    TimingCheck,
    TimingChecker,
    V15B,
    V16A,
    V20,
    version_drift,
)


def clock_wave(period=20, edges=4):
    wave = []
    t = 0
    for _ in range(edges):
        wave.append((t, "0"))
        wave.append((t + period // 2, "1"))
        t += period
    return wave


class TestCheckValidation:
    def test_bad_kind(self):
        with pytest.raises(ValueError):
            TimingCheck("slew", "d", "clk", 5)

    def test_bad_limit(self):
        with pytest.raises(ValueError):
            TimingCheck("setup", "d", "clk", 0)


class TestSetupHold:
    def test_clear_setup_passes(self):
        waves = {"clk": [(0, "0"), (50, "1")], "d": [(0, "0"), (10, "1")]}
        checker = TimingChecker(V15B)
        check = TimingCheck("setup", "d", "clk", limit=20)
        assert checker.check(check, waves) == []

    def test_setup_violation(self):
        waves = {"clk": [(0, "0"), (50, "1")], "d": [(0, "0"), (45, "1")]}
        checker = TimingChecker(V15B)
        check = TimingCheck("setup", "d", "clk", limit=20)
        violations = checker.check(check, waves)
        assert len(violations) == 1
        assert violations[0].observed == 5

    def test_hold_violation(self):
        waves = {"clk": [(0, "0"), (50, "1")], "d": [(0, "0"), (52, "1")]}
        checker = TimingChecker(V16A)
        check = TimingCheck("hold", "d", "clk", limit=5)
        violations = checker.check(check, waves)
        assert len(violations) == 1
        assert violations[0].observed == 2

    def test_hold_clear(self):
        waves = {"clk": [(0, "0"), (50, "1")], "d": [(0, "0"), (70, "1")]}
        checker = TimingChecker(V16A)
        assert checker.check(TimingCheck("hold", "d", "clk", 5), waves) == []

    def test_width_check(self):
        waves = {"p": [(0, "0"), (10, "1"), (13, "0")]}
        checker = TimingChecker(V15B)
        violations = checker.check(TimingCheck("width", "p", "p", limit=5), waves)
        assert len(violations) == 1 and violations[0].observed == 3

    def test_negedge_reference(self):
        waves = {"clk": [(0, "1"), (50, "0")], "d": [(0, "0"), (48, "1")]}
        checker = TimingChecker(V15B)
        check = TimingCheck("setup", "d", "clk", limit=5, reference_edge="negedge")
        assert len(checker.check(check, waves)) == 1


class TestVersionBoundary:
    """The modelled 1.6a change: boundary-equal events."""

    WAVES = {"clk": [(0, "0"), (50, "1")], "d": [(0, "0"), (30, "1")]}
    CHECK = TimingCheck("setup", "d", "clk", limit=20)  # margin exactly 20

    def test_pre_16a_boundary_passes(self):
        assert TimingChecker(V15B).check(self.CHECK, self.WAVES) == []

    def test_post_16a_boundary_violates(self):
        assert len(TimingChecker(V16A).check(self.CHECK, self.WAVES)) == 1
        assert len(TimingChecker(V20).check(self.CHECK, self.WAVES)) == 1

    def test_compat_flag_restores_old_behavior(self):
        """+pre_16a_path: new versions behave like pre-1.6a."""
        checker = TimingChecker(V20, pre_16a_path=True)
        assert checker.check(self.CHECK, self.WAVES) == []
        assert "pre_16a_path" in checker.version.name

    def test_compat_flag_noop_on_old_version(self):
        checker = TimingChecker(V15B, pre_16a_path=True)
        assert checker.version == V15B


class TestDrift:
    WAVES = {"clk": [(0, "0"), (50, "1")], "d": [(0, "0"), (30, "1")]}
    CHECKS = [TimingCheck("setup", "d", "clk", limit=20)]

    def test_results_drift_across_versions(self):
        report = version_drift(self.CHECKS, self.WAVES)
        assert report.drifts
        assert report.per_version == {"1.5b": 0, "1.6a": 1, "2.0": 1}

    def test_compat_flag_pins_results(self):
        report = version_drift(self.CHECKS, self.WAVES, pre_16a_path=True)
        assert not report.drifts
        assert set(report.per_version.values()) == {0}

    def test_non_boundary_cases_stable_anyway(self):
        waves = {"clk": [(0, "0"), (50, "1")], "d": [(0, "0"), (10, "1")]}
        report = version_drift(self.CHECKS, waves)
        assert not report.drifts
