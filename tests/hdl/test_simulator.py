"""Tests for the event-driven simulator kernel."""

import pytest

from cadinterop.hdl.ast_nodes import HDLError
from cadinterop.hdl.parser import parse_module
from cadinterop.hdl.simulator import FIFO, LIFO, Simulator, seeded_shuffle_policy, simulate


def run(src, until=1000, policy=FIFO):
    return simulate(parse_module(src), policy=policy, until=until)


class TestCombinational:
    def test_continuous_assign(self):
        sim = run(
            """
            module m (); reg a, b; wire y;
            assign y = a & b;
            initial begin a = 1'b1; b = 1'b1; end
            endmodule
            """
        )
        assert sim.value("y") == "1"

    def test_x_initial_values(self):
        sim = run("module m (); wire y; reg a; assign y = a; endmodule")
        assert sim.value("y") == "x"

    def test_gate_chain(self):
        sim = run(
            """
            module m (); reg a; wire n1, n2;
            not g1 (n1, a);
            not g2 (n2, n1);
            initial a = 1'b0;
            endmodule
            """
        )
        assert sim.value("n1") == "1" and sim.value("n2") == "0"

    def test_assign_delay_transport(self):
        sim = run(
            """
            module m (); reg a; wire y;
            assign #10 y = a;
            initial begin a = 1'b0; #20 a = 1'b1; end
            endmodule
            """
        )
        wave = sim.waveform("y")
        assert (10, "0") in wave and (30, "1") in wave

    def test_inertial_delay_swallows_glitch(self):
        """A pulse shorter than the assign delay never reaches the output."""
        sim = run(
            """
            module m (); reg a; wire y;
            assign #10 y = a;
            initial begin a = 1'b0; #20 a = 1'b1; #3 a = 1'b0; end
            endmodule
            """
        )
        values = [v for _t, v in sim.waveform("y")]
        assert "1" not in values

    def test_multiple_drivers_resolve(self):
        sim = run(
            """
            module m (); reg a, ena, b, enb; wire y;
            bufif1 b1 (y, a, ena);
            bufif1 b2 (y, b, enb);
            initial begin a = 1'b1; ena = 1'b1; b = 1'b0; enb = 1'b0; end
            endmodule
            """
        )
        assert sim.value("y") == "1"

    def test_driver_conflict_is_x(self):
        sim = run(
            """
            module m (); reg a, b; wire y;
            buf b1 (y, a);
            buf b2 (y, b);
            initial begin a = 1'b1; b = 1'b0; end
            endmodule
            """
        )
        assert sim.value("y") == "x"

    def test_tristate_z(self):
        sim = run(
            """
            module m (); reg a, en; wire y;
            bufif1 b1 (y, a, en);
            initial begin a = 1'b1; en = 1'b0; end
            endmodule
            """
        )
        assert sim.value("y") == "z"


class TestProcedural:
    def test_level_sensitive_always(self):
        sim = run(
            """
            module m (); reg a, b, y;
            always @(a or b) y = a | b;
            initial begin a = 1'b0; b = 1'b0; #5 a = 1'b1; end
            endmodule
            """
        )
        assert sim.value("y") == "1"
        assert (5, "1") in sim.waveform("y")

    def test_incomplete_sensitivity_goes_stale(self):
        """The paper's modeling-style trap: out misses changes of c."""
        sim = run(
            """
            module m (); reg a, b, c, out;
            always @(a or b) out = a & b & c;
            initial begin c = 1'b1; a = 1'b1; b = 1'b1; #10 c = 1'b0; end
            endmodule
            """
        )
        # c fell at t=10 but out was not re-evaluated: stale 1.
        assert sim.value("out") == "1"

    def test_star_sensitivity_tracks_all_reads(self):
        sim = run(
            """
            module m (); reg a, b, c, out;
            always @(*) out = a & b & c;
            initial begin c = 1'b1; a = 1'b1; b = 1'b1; #10 c = 1'b0; end
            endmodule
            """
        )
        assert sim.value("out") == "0"

    def test_posedge_flop(self):
        sim = run(
            """
            module m (); reg clk, d, q;
            always @(posedge clk) q <= d;
            initial begin clk = 1'b0; d = 1'b1;
              #5 clk = 1'b1; #5 clk = 1'b0; d = 1'b0; #5 clk = 1'b1; end
            endmodule
            """
        )
        wave = sim.waveform("q")
        assert (5, "1") in wave and (15, "0") in wave

    def test_negedge(self):
        sim = run(
            """
            module m (); reg clk, q;
            always @(negedge clk) q <= 1'b1;
            initial begin q = 1'b0; clk = 1'b1; #5 clk = 1'b0; end
            endmodule
            """
        )
        assert (5, "1") in sim.waveform("q")

    def test_nonblocking_swap(self):
        """The classic: nonblocking assignments swap cleanly."""
        sim = run(
            """
            module m (); reg clk, a, b;
            always @(posedge clk) a <= b;
            always @(posedge clk) b <= a;
            initial begin a = 1'b0; b = 1'b1; clk = 1'b0; #5 clk = 1'b1; end
            endmodule
            """
        )
        assert sim.value("a") == "1" and sim.value("b") == "0"

    def test_nonblocking_swap_order_independent(self):
        src = """
            module m (); reg clk, a, b;
            always @(posedge clk) a <= b;
            always @(posedge clk) b <= a;
            initial begin a = 1'b0; b = 1'b1; clk = 1'b0; #5 clk = 1'b1; end
            endmodule
        """
        for policy in (FIFO, LIFO, seeded_shuffle_policy(3)):
            sim = run(src, policy=policy)
            assert (sim.value("a"), sim.value("b")) == ("1", "0"), policy.name

    def test_blocking_swap_races(self):
        """Blocking swap is a race: outcome depends on ordering."""
        src = """
            module m (); reg clk, a, b;
            always @(posedge clk) a = b;
            always @(posedge clk) b = a;
            initial begin a = 1'b0; b = 1'b1; clk = 1'b0; #5 clk = 1'b1; end
            endmodule
        """
        fifo = run(src, policy=FIFO)
        lifo = run(src, policy=LIFO)
        assert (fifo.value("a"), fifo.value("b")) != (lifo.value("a"), lifo.value("b"))

    def test_if_x_condition_takes_else(self):
        sim = run(
            """
            module m (); reg a, y;
            always @(a) if (a) y = 1'b1; else y = 1'b0;
            initial begin a = 1'bx; #1 a = 1'bx; end
            endmodule
            """
        )
        # a stays x; the block runs at t=0... a never changes so the always
        # block may not trigger; force evaluation via initial values.
        assert sim.value("y") in ("x", "0")

    def test_initial_sequencing(self):
        sim = run(
            """
            module m (); reg a;
            initial begin a = 1'b0; #5 a = 1'b1; #5 a = 1'b0; end
            endmodule
            """
        )
        assert sim.waveform("a") == [(0, "0"), (5, "1"), (10, "0")]

    def test_two_initial_blocks(self):
        sim = run(
            """
            module m (); reg a, b;
            initial a = 1'b1;
            initial b = 1'b0;
            endmodule
            """
        )
        assert sim.value("a") == "1" and sim.value("b") == "0"


class TestKernelGuards:
    def test_zero_delay_oscillation_detected(self):
        # Two level-sensitive blocks chasing each other with no delay:
        # p=0 -> q=1 -> p=1 -> q=0 -> ... forever within t=0.
        src = """
            module m (); reg p, q;
            always @(p) q = ~p;
            always @(q) p = q;
            initial p = 1'b0;
            endmodule
        """
        sim = Simulator(parse_module(src))
        with pytest.raises(HDLError):
            sim.run(10, max_activations=500)

    def test_unflattened_hierarchy_rejected(self):
        from cadinterop.hdl.parser import parse

        unit = parse(
            """
            module c (p); input p; endmodule
            module t (); wire w; c u1 (.p(w)); endmodule
            """
        )
        unit.top = "t"
        with pytest.raises(HDLError):
            Simulator(unit.top_module)

    def test_run_until_stops_early(self):
        sim = Simulator(parse_module(
            "module m (); reg a; initial begin a = 1'b0; #100 a = 1'b1; end endmodule"
        ))
        sim.run(50)
        assert sim.value("a") == "0"
        sim.run(200)
        assert sim.value("a") == "1"

    def test_waveform_trace_filter(self):
        sim = simulate(
            parse_module("module m (); reg a, b; initial begin a = 1'b0; b = 1'b1; end endmodule"),
            trace=["a"],
        )
        assert sim.waveform("a")
        with pytest.raises(KeyError):
            sim.waveform("b")


class TestConditionalSemantics:
    def test_x_selector_merges_agreeing_arms(self):
        sim = run(
            """
            module m (); reg s, y; wire out;
            assign out = s ? 1'b1 : 1'b1;
            endmodule
            """
        )
        # Selector is x but both arms agree: the result is known.
        assert sim.value("out") == "1"

    def test_x_selector_pessimistic_on_disagreeing_arms(self):
        sim = run(
            """
            module m (); reg s; wire out;
            assign out = s ? 1'b1 : 1'b0;
            endmodule
            """
        )
        assert sim.value("out") == "x"

    def test_delayed_gate(self):
        sim = run(
            """
            module m (); reg a; wire y;
            not #7 g (y, a);
            initial begin a = 1'b0; #10 a = 1'b1; end
            endmodule
            """
        )
        wave = sim.waveform("y")
        assert (7, "1") in wave and (17, "0") in wave

    def test_case_equality_distinguishes_x_and_z(self):
        sim = run(
            """
            module m (); reg a; wire is_z, is_x;
            assign is_z = a === 1'bz;
            assign is_x = a === 1'bx;
            initial a = 1'bz;
            endmodule
            """
        )
        assert sim.value("is_z") == "1"
        assert sim.value("is_x") == "0"
