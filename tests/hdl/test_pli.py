"""Tests for the PLI-style extension interface."""

import pytest

from cadinterop.hdl.pli import (
    ALL_PLATFORMS,
    BuildResult,
    HPUX_LIKE,
    LINUX_LIKE,
    PliModule,
    PliRegistry,
    SimulatorLinkSpec,
    SUNOS_LIKE,
    TURBO_LINK,
    XL_LINK,
    build_pli,
)


def monitor_module(**kwargs):
    module = PliModule("monitor", **kwargs)
    module.add_task("$count_events", lambda *events: len(events))
    return module


class TestPliModule:
    def test_task_names_must_start_with_dollar(self):
        with pytest.raises(ValueError):
            PliModule("m").add_task("count", lambda: 0)

    def test_duplicate_task_rejected(self):
        module = monitor_module()
        with pytest.raises(ValueError):
            module.add_task("$count_events", lambda: 0)


class TestBuild:
    def test_commands_per_platform_differ(self):
        commands = {
            platform.name: build_pli(monitor_module(), platform, TURBO_LINK).command_lines
            for platform in ALL_PLATFORMS
        }
        # Paper: compilers, flags, and linking differ per platform.
        flat = [" ".join(lines) for lines in commands.values()]
        assert len(set(flat)) == len(ALL_PLATFORMS)
        assert "-fPIC" in " ".join(commands["linux-like"])
        assert "+z" in " ".join(commands["hpux-like"])

    def test_static_relink_includes_veriuser_table(self):
        result = build_pli(monitor_module(), SUNOS_LIKE, XL_LINK)
        assert result.ok
        assert any("veriuser.c" in line for line in result.command_lines)

    def test_wrong_platform_object_fails(self):
        module = monitor_module(source_platform="sunos-like")
        result = build_pli(module, LINUX_LIKE, TURBO_LINK)
        assert not result.ok
        assert result.log.has_errors()

    def test_dynamic_requirement_vs_static_simulator(self):
        module = monitor_module(requires_dynamic_load=True)
        result = build_pli(module, LINUX_LIKE, XL_LINK)
        assert not result.ok

    def test_bad_link_mode_rejected(self):
        with pytest.raises(ValueError):
            SimulatorLinkSpec("s", "hotpatch", veriuser_table=False)


class TestRegistry:
    def test_load_and_call(self):
        registry = PliRegistry()
        build = build_pli(monitor_module(), LINUX_LIKE, TURBO_LINK)
        registry.load(monitor_module(), build)
        assert registry.call("$count_events", 1, 2, 3) == 3
        assert registry.tasks() == ["$count_events"]

    def test_failed_build_not_loadable(self):
        registry = PliRegistry()
        module = monitor_module(requires_dynamic_load=True)
        build = build_pli(module, LINUX_LIKE, XL_LINK)
        with pytest.raises(RuntimeError):
            registry.load(module, build)

    def test_unknown_task(self):
        with pytest.raises(RuntimeError):
            PliRegistry().call("$ghost")

    def test_conflicting_providers_rejected(self):
        registry = PliRegistry()
        build = build_pli(monitor_module(), LINUX_LIKE, TURBO_LINK)
        registry.load(monitor_module(), build)
        other = PliModule("other")
        other.add_task("$count_events", lambda: -1)
        with pytest.raises(RuntimeError):
            registry.load(other, build_pli(other, LINUX_LIKE, TURBO_LINK))
