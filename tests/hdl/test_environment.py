"""Tests for simulator invocation dialects (paper 3.1 'Environment')."""

import pytest

from cadinterop.common.diagnostics import IssueLog
from cadinterop.hdl.environment import (
    ALL_INVOCATIONS,
    Pc8LikeInvocation,
    SimulationRequest,
    TurboLikeInvocation,
    XlLikeInvocation,
    generate_run_scripts,
    single_script_possible,
)


@pytest.fixture()
def request_spec():
    return SimulationRequest(
        sources=("cpu.v", "tb.v"),
        top="tb",
        defines=(("WIDTH", "8"), ("FAST", "")),
        include_dirs=("rtl/include",),
        plusargs=("+no_warn", "+seed+42"),
        run_until=10000,
        dump_waves=True,
    )


class TestDialects:
    def test_interpreted_is_one_command(self, request_spec):
        commands = XlLikeInvocation().commands(request_spec)
        assert len(commands) == 1
        line = commands[0]
        assert line.startswith("xlsim")
        assert "+incdir+rtl/include" in line
        assert "+define+WIDTH=8" in line
        assert "+define+FAST" in line
        assert "+no_warn" in line and "+seed+42" in line
        assert "+stop_at+10000" in line

    def test_compiled_is_three_steps(self, request_spec):
        commands = TurboLikeInvocation().commands(request_spec)
        assert len(commands) == 3
        assert commands[0].startswith("tcompile")
        assert "-DWIDTH=8" in commands[0]
        assert commands[1].startswith("telab tb")
        assert commands[2].startswith("./tb.sim")
        assert "--until 10000" in commands[2]

    def test_pc_uses_control_file(self, request_spec):
        commands = Pc8LikeInvocation().commands(request_spec)
        assert len(commands) == 2
        assert "sim.ctl" in commands[0]
        assert "PCSIM.EXE" in commands[1]
        assert "LOAD cpu.v" in commands[0]
        assert "RUN 10000" in commands[0]

    def test_feature_losses_logged(self, request_spec):
        log = IssueLog()
        TurboLikeInvocation().commands(request_spec, log)
        assert any("plusargs" in issue.message for issue in log)

    def test_interactive_unsupported_on_compiled(self):
        request = SimulationRequest(sources=("a.v",), top="a", interactive=True)
        log = IssueLog()
        TurboLikeInvocation().commands(request, log)
        assert any("interactive" in issue.message for issue in log)
        # The interpreted simulator supports it natively.
        line = XlLikeInvocation().commands(request)[0]
        assert line.endswith("-s")


class TestSingleScriptClaim:
    def test_single_script_impossible(self, request_spec):
        """The paper's claim: one script cannot drive all simulators."""
        assert not single_script_possible(request_spec)

    def test_per_simulator_scripts_generated(self, request_spec):
        scripts = generate_run_scripts(request_spec)
        assert set(scripts) == {"xl-like", "turbo-like", "pc8-like"}
        for name, script in scripts.items():
            assert script.startswith("#!/bin/sh")
            assert name in script

    def test_scripts_differ_pairwise(self, request_spec):
        scripts = generate_run_scripts(request_spec)
        bodies = list(scripts.values())
        assert len(set(bodies)) == len(bodies)

    def test_trivially_single_when_one_simulator(self, request_spec):
        assert single_script_possible(request_spec, [XlLikeInvocation()])
