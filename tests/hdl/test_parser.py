"""Tests for the HDL parser."""

import pytest

from cadinterop.hdl.ast_nodes import (
    Assign,
    Binary,
    Cond,
    Const,
    Delay,
    HDLError,
    If,
    Unary,
    Var,
)
from cadinterop.hdl.parser import ParseError, parse, parse_module


class TestModuleStructure:
    def test_ports_and_nets(self):
        m = parse_module(
            "module m (a, y); input a; output y; wire w; reg r; endmodule"
        )
        assert m.port_names() == ["a", "y"]
        assert m.nets["w"].kind == "wire"
        assert m.nets["r"].kind == "reg"

    def test_port_direction_upgrade_to_reg(self):
        m = parse_module("module m (y); output y; reg y; endmodule")
        assert m.nets["y"].kind == "reg"

    def test_header_port_without_direction_rejected(self):
        with pytest.raises(HDLError):
            parse_module("module m (a); wire a; endmodule")

    def test_undeclared_signal_rejected(self):
        with pytest.raises(HDLError):
            parse_module("module m (); always @(ghost) ghost2 = ghost; endmodule")

    def test_multiple_modules(self):
        unit = parse(
            "module a (); endmodule module b (); endmodule"
        )
        assert set(unit.modules) == {"a", "b"}
        assert unit.top == "a"

    def test_empty_source_rejected(self):
        with pytest.raises(ParseError):
            parse("   // nothing\n")


class TestItems:
    def test_assign_with_delay(self):
        m = parse_module("module m (a, y); input a; output y; assign #3 y = ~a; endmodule")
        assert m.assigns[0].delay == 3
        assert m.assigns[0].expr == Unary("~", Var("a"))

    def test_gate_with_delay(self):
        m = parse_module("module m (a, b, y); input a, b; output y; nand #2 g (y, a, b); endmodule")
        gate = m.gates[0]
        assert gate.gate == "nand" and gate.delay == 2
        assert gate.output == "y" and gate.inputs == ["a", "b"]

    def test_gate_arity_checked(self):
        with pytest.raises(HDLError):
            parse_module("module m (y); output y; not g (y); endmodule")

    def test_module_instance_named_connections(self):
        unit = parse(
            """
            module child (p, q); input p; output q; assign q = p; endmodule
            module top (x, y); input x; output y;
              child u1 (.p(x), .q(y));
            endmodule
            """
        )
        inst = unit.module("top").instances[0]
        assert inst.module_name == "child"
        assert inst.connections == {"p": "x", "q": "y"}

    def test_duplicate_port_connection_rejected(self):
        with pytest.raises(ParseError):
            parse(
                """
                module child (p); input p; endmodule
                module top (x); input x; child u1 (.p(x), .p(x)); endmodule
                """
            )

    def test_always_sensitivity_variants(self):
        m = parse_module(
            """
            module m (clk, a, b);
              input clk, a, b; reg q, r, s;
              always @(posedge clk) q <= a;
              always @(a or b) r = a;
              always @(*) s = b;
            endmodule
            """
        )
        assert m.always_blocks[0].sensitivity.items[0].edge == "posedge"
        assert m.always_blocks[0].body[0].nonblocking
        assert m.always_blocks[1].sensitivity.signals() == {"a", "b"}
        assert m.always_blocks[2].sensitivity.star

    def test_comma_sensitivity_list(self):
        m = parse_module("module m (a, b); input a, b; reg r; always @(a, b) r = a; endmodule")
        assert m.always_blocks[0].sensitivity.signals() == {"a", "b"}

    def test_initial_with_delays(self):
        m = parse_module(
            "module m (); reg a; initial begin a = 1'b0; #5 a = 1'b1; #3 a = 1'b0; end endmodule"
        )
        body = m.initial_blocks[0].body
        kinds = [type(s).__name__ for s in body]
        assert kinds == ["Assign", "Delay", "Assign", "Delay", "Assign"]
        assert body[1].amount == 5

    def test_if_else(self):
        m = parse_module(
            """
            module m (a, b); input a, b; reg y;
            always @(a or b) if (a) y = b; else y = ~b;
            endmodule
            """
        )
        stmt = m.always_blocks[0].body[0]
        assert isinstance(stmt, If) and stmt.else_body is not None


class TestExpressions:
    def parse_expr(self, text):
        m = parse_module(
            f"module m (a, b, c, y); input a, b, c; output y; assign y = {text}; endmodule"
        )
        return m.assigns[0].expr

    def test_precedence_and_over_or(self):
        expr = self.parse_expr("a | b & c")
        assert expr == Binary("|", Var("a"), Binary("&", Var("b"), Var("c")))

    def test_equality_binds_tighter_than_and(self):
        expr = self.parse_expr("a & b == c")
        assert expr == Binary("&", Var("a"), Binary("==", Var("b"), Var("c")))

    def test_parentheses(self):
        expr = self.parse_expr("(a | b) & c")
        assert expr == Binary("&", Binary("|", Var("a"), Var("b")), Var("c"))

    def test_ternary(self):
        expr = self.parse_expr("a ? b : c")
        assert expr == Cond(Var("a"), Var("b"), Var("c"))

    def test_nested_ternary_right_assoc(self):
        expr = self.parse_expr("a ? b : a ? c : b")
        assert isinstance(expr.if_false, Cond)

    def test_case_equality(self):
        expr = self.parse_expr("a === 1'bz")
        assert expr == Binary("===", Var("a"), Const("z"))

    def test_literals(self):
        assert self.parse_expr("1'bx") == Const("x")
        assert self.parse_expr("0") == Const("0")

    def test_unary_chain(self):
        assert self.parse_expr("~~a") == Unary("~", Unary("~", Var("a")))

    def test_logical_ops(self):
        expr = self.parse_expr("a && b || c")
        assert expr == Binary("||", Binary("&&", Var("a"), Var("b")), Var("c"))

    def test_unsupported_number(self):
        with pytest.raises(ParseError):
            self.parse_expr("42")


class TestLexical:
    def test_comments(self):
        m = parse_module(
            """
            // line comment
            module m (a); /* block
            comment */ input a;
            endmodule
            """
        )
        assert m.name == "m"

    def test_escaped_identifier(self):
        m = parse_module("module m (); wire \\bus[3] ; assign \\bus[3] = 1'b0; endmodule")
        assert "bus[3]" in m.nets

    def test_error_carries_line_number(self):
        try:
            parse_module("module m (a);\ninput a;\n%%%\nendmodule")
        except ParseError as exc:
            assert exc.line == 3
        else:
            pytest.fail("expected ParseError")
