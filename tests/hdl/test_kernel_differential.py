"""Differential tests: compiled kernel vs the interpreter oracle.

The compiled kernel is only allowed to be *faster*, never *different*:
for every module in the corpus and every ordering policy, final values
and full waveforms must be identical between ``kernel="interp"`` and
``kernel="compiled"``.  The corpus deliberately includes racy models —
where the policy choice is observable — so the test also proves the two
kernels present races to the policies in the same order.
"""

import pytest

from cadinterop.hdl.compile import compile_calls, compile_model
from cadinterop.hdl.parser import parse_module
from cadinterop.hdl.personalities import DEFAULT_ENSEMBLE
from cadinterop.hdl.races import detect_races
from cadinterop.hdl.simulator import (
    FIFO,
    LIFO,
    Simulator,
    seeded_shuffle_policy,
)

#: name -> HDL source.  Everything the kernels implement is represented:
#: continuous assigns (plain/delayed/multi-driver), the gate primitives
#: incl. tristate, level/edge/star sensitivity, blocking vs nonblocking
#: races, x/z conditional semantics, and delayed initial sequencing.
CORPUS = {
    "racy_blocking": """
        module racy_blocking;
          reg clk; reg b; reg d; reg flag;
          wire a;
          assign a = b;
          always @(posedge clk) if (a != d) flag = 1; else flag = 0;
          always @(posedge clk) b = d;
          always @(posedge clk) d = ~d;
          initial begin d = 1; b = 0; flag = 0; clk = 0; #5 clk = 1; #5 clk = 0; #5 clk = 1; end
        endmodule
    """,
    "clean_nonblocking": """
        module clean_nonblocking;
          reg clk; reg b; reg d; reg flag;
          always @(posedge clk) b <= d;
          always @(posedge clk) flag <= d;
          initial begin d = 1; b = 0; flag = 0; clk = 0; #5 clk = 1; #5 clk = 0; #5 clk = 1; end
        endmodule
    """,
    "gates_and_tristate": """
        module gates_and_tristate;
          reg a; reg b; reg en;
          wire n1; wire n2; wire n3; wire bus;
          and g1 (n1, a, b);
          nor g2 (n2, a, b, n1);
          xnor g3 (n3, n1, n2);
          bufif1 t1 (bus, n3, en);
          bufif0 t2 (bus, a, en);
          initial begin a = 0; b = 1; en = 0; #4 en = 1; #4 a = 1; #4 en = 1'bx; end
        endmodule
    """,
    "delays_and_glitches": """
        module delays_and_glitches;
          reg a;
          wire slow; wire fast;
          assign #3 slow = ~a;
          assign fast = ~a;
          initial begin a = 0; #10 a = 1; #1 a = 0; #10 a = 1; end
        endmodule
    """,
    "cond_xz": """
        module cond_xz;
          reg s; reg p; reg q;
          wire same; wire differ;
          assign same = s ? p : p;
          assign differ = s ? p : q;
          initial begin p = 1; q = 0; #2 s = 1'bx; #2 s = 1'bz; #2 s = 1; end
        endmodule
    """,
    "star_and_negedge": """
        module star_and_negedge;
          reg clk; reg a; reg b; reg acc; reg ncount;
          always @(*) acc = a ^ b;
          always @(negedge clk) ncount = ~ncount;
          initial begin clk = 1; a = 0; b = 0; ncount = 0;
            #5 clk = 0; #5 clk = 1; a = 1; #5 clk = 0; b = 1; end
        endmodule
    """,
    "multi_driver_bus": """
        module multi_driver_bus;
          reg a; reg b;
          wire w;
          assign w = a;
          assign w = b;
          initial begin a = 1'bz; b = 0; #3 a = 1; #3 b = 1'bz; #3 b = 0; end
        endmodule
    """,
}

POLICIES = [
    ("fifo", FIFO),
    ("lifo", LIFO),
    ("shuffle11", seeded_shuffle_policy(11)),
    ("shuffle97", seeded_shuffle_policy(97)),
]


def run_kernel(module, policy, kernel):
    sim = Simulator(
        module, policy, trace_signals=sorted(module.nets), kernel=kernel
    )
    sim.run(1000)
    return sim


class TestWaveformEquivalence:
    @pytest.mark.parametrize("policy_name,policy", POLICIES)
    @pytest.mark.parametrize("name", sorted(CORPUS))
    def test_compiled_matches_interpreter(self, name, policy_name, policy):
        module = parse_module(CORPUS[name])
        interp = run_kernel(module, policy, "interp")
        compiled = run_kernel(module, policy, "compiled")
        assert interp.values == compiled.values, (name, policy_name)
        assert interp.waveforms == compiled.waveforms, (name, policy_name)
        # Same number of scheduling decisions means the policies saw the
        # same ready-queue evolution, not just converging end states.
        assert interp.activations == compiled.activations, (name, policy_name)

    @pytest.mark.parametrize("name", sorted(CORPUS))
    def test_shared_model_matches_per_run_compilation(self, name):
        module = parse_module(CORPUS[name])
        model = compile_model(module)
        for _, policy in POLICIES:
            fresh = run_kernel(module, policy, "compiled")
            shared = Simulator(model, policy, trace_signals=sorted(module.nets))
            shared.run(1000)
            assert fresh.values == shared.values
            assert fresh.waveforms == shared.waveforms


class TestEnsembleEquivalence:
    def test_detect_races_verdicts_agree_across_kernels(self):
        for name, src in sorted(CORPUS.items()):
            module = parse_module(src)
            interp = detect_races(module, until=1000, kernel="interp")
            compiled = detect_races(module, until=1000, kernel="compiled")
            assert interp.has_race == compiled.has_race, name
            assert interp.racy_signals == compiled.racy_signals, name
            for a, b in zip(interp.divergences, compiled.divergences):
                assert a.final_values == b.final_values, name

    def test_ensemble_compiles_exactly_once(self):
        module = parse_module(CORPUS["racy_blocking"])
        before = compile_calls()
        detect_races(module, until=1000, kernel="compiled")
        assert compile_calls() == before + 1
        assert len(DEFAULT_ENSEMBLE) >= 4  # one compile serves all of these

    def test_interp_ensemble_never_compiles(self):
        module = parse_module(CORPUS["racy_blocking"])
        before = compile_calls()
        detect_races(module, until=1000, kernel="interp")
        assert compile_calls() == before


class TestPolicyDeterminism:
    def test_shuffle_policy_object_reuse_is_deterministic(self):
        # A reused policy object must give identical runs — the ensemble
        # reuses its shuffle personalities across detect_races calls.
        module = parse_module(CORPUS["racy_blocking"])
        policy = seeded_shuffle_policy(1234)
        first = run_kernel(module, policy, "compiled")
        second = run_kernel(module, policy, "compiled")
        assert first.values == second.values
        assert first.waveforms == second.waveforms

    def test_shuffle_streams_differ_by_seed(self):
        ready = list(range(5))
        a = seeded_shuffle_policy(1)
        b = seeded_shuffle_policy(2)
        choices_a = [a.choose(ready, ordinal) for ordinal in range(32)]
        choices_b = [b.choose(ready, ordinal) for ordinal in range(32)]
        assert choices_a != choices_b

    def test_shuffle_choice_depends_only_on_seed_and_ordinal(self):
        ready = list(range(7))
        first = seeded_shuffle_policy(42)
        second = seeded_shuffle_policy(42)
        for ordinal in (0, 1, 5, 100, 10_000):
            assert first.choose(ready, ordinal) == second.choose(ready, ordinal)
