"""Exporters: JSONL roundtrip, tree/stats renderers, schema validation."""

import json

import pytest

from cadinterop.obs import (
    READABLE_FORMATS,
    TRACE_FORMAT,
    LineageRecorder,
    MetricsRegistry,
    Tracer,
    read_trace,
    render_stats,
    render_tree,
    span_stats,
    validate_trace,
    write_trace,
)
from cadinterop.obs.trace import sanitize_attrs
from cadinterop.obs.validate import main as validate_main


def sample_trace():
    tracer = Tracer(trace_id="cafe0123")
    with tracer.span("root", corpus=2):
        with tracer.span("child-a"):
            pass
        with tracer.span("child-b"):
            pass
    registry = MetricsRegistry()
    registry.counter("hits").inc(3)
    registry.histogram("lat", buckets=(0.5, 1.0)).observe(0.2)
    return tracer, registry


class TestRoundtrip:
    def test_write_then_read(self, tmp_path):
        tracer, registry = sample_trace()
        path = tmp_path / "trace.jsonl"
        written = write_trace(path, tracer.spans(), registry.snapshot(),
                              trace_id=tracer.trace_id)
        assert written == 1 + 3 + 2  # meta + spans + metrics
        trace = read_trace(path)
        assert trace["meta"]["trace_id"] == "cafe0123"
        assert trace["meta"]["format"] == TRACE_FORMAT
        assert [s["name"] for s in trace["spans"]] == ["root", "child-a", "child-b"]
        assert trace["metrics"]["hits"]["value"] == 3
        assert trace["metrics"]["lat"]["counts"] == [1, 0, 0]

    def test_read_rejects_unknown_record(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"record": "mystery"}\n')
        with pytest.raises(ValueError, match="mystery"):
            read_trace(path)

    def test_lineage_records_roundtrip(self, tmp_path):
        tracer, registry = sample_trace()
        recorder = LineageRecorder()
        recorder.record("net", "CLK", "bus-syntax", "transformed",
                        detail="CLK -> clk", design="top", dialect="a->b")
        recorder.record("intent", "region", "pnr:convey", "dropped")
        path = tmp_path / "trace.jsonl"
        written = write_trace(path, tracer.spans(), registry.snapshot(),
                              trace_id=tracer.trace_id,
                              lineage=recorder.records())
        assert written == 1 + 3 + 2 + 2  # meta + spans + lineage + metrics
        trace = read_trace(path)
        assert len(trace["lineage"]) == 2
        first = trace["lineage"][0]
        assert first["object_id"] == "CLK" and first["verb"] == "transformed"
        assert first["design"] == "top" and first["dialect"] == "a->b"


class TestCorruptInput:
    """Satellite: read_trace/validate must fail loudly, not guess."""

    def test_format_1_files_still_read(self, tmp_path):
        # A pre-lineage trace written by the old exporter.
        assert 1 in READABLE_FORMATS and TRACE_FORMAT == 2
        path = tmp_path / "v1.jsonl"
        path.write_text(
            "\n".join([
                json.dumps({"record": "meta", "format": 1, "trace_id": "old"}),
                json.dumps({"record": "span", "span_id": "s1", "parent_id": None,
                            "name": "root", "start": 1.0, "seconds": 0.5,
                            "status": "ok", "attrs": {}}),
                json.dumps({"record": "metric", "name": "hits",
                            "type": "counter", "value": 2}),
            ]) + "\n"
        )
        trace = read_trace(path)
        assert trace["meta"]["format"] == 1
        assert trace["lineage"] == []  # simply absent, not an error
        assert trace["metrics"]["hits"]["value"] == 2
        assert validate_trace(path) == []

    def test_truncated_line_names_the_line(self, tmp_path):
        tracer, registry = sample_trace()
        path = tmp_path / "cut.jsonl"
        write_trace(path, tracer.spans(), registry.snapshot(),
                    trace_id=tracer.trace_id)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])  # mid-record truncation
        with pytest.raises(ValueError, match=r"line \d+: invalid JSON"):
            read_trace(path)
        with pytest.raises(ValueError, match="truncated"):
            read_trace(path)

    def test_future_format_is_refused(self, tmp_path):
        path = tmp_path / "v3.jsonl"
        path.write_text(json.dumps({"record": "meta", "format": 3,
                                    "trace_id": "x"}) + "\n")
        with pytest.raises(ValueError, match="unsupported trace format 3"):
            read_trace(path)
        errors = "\n".join(validate_trace(path))
        assert "unknown trace format 3" in errors

    def test_non_object_record_is_refused(self, tmp_path):
        path = tmp_path / "list.jsonl"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(ValueError, match="not an object"):
            read_trace(path)


class TestAttrSanitization:
    """Satellite: span attrs become primitives at finish, not at dump."""

    def test_sanitize_stringifies_non_primitives(self):
        clean = sanitize_attrs({"n": 3, "ok": True, "none": None,
                                "path": {"a": 1}, 4: "key"})
        assert clean["n"] == 3 and clean["ok"] is True and clean["none"] is None
        assert clean["path"] == "{'a': 1}"  # explicit str(), not a dumps fallback
        assert clean["4"] == "key"

    def test_finished_span_attrs_are_primitives(self):
        tracer = Tracer()
        with tracer.span("s", corpus=["a", "b"], size=2):
            pass
        attrs = tracer.spans()[0]["attrs"]
        assert attrs == {"corpus": "['a', 'b']", "size": 2}

    def test_write_trace_no_longer_stringifies_silently(self, tmp_path):
        # A producer bypassing span-finish sanitization must raise, not be
        # papered over by json.dumps(default=str).
        span = {"name": "s", "span_id": "1", "parent_id": None, "start": 1.0,
                "seconds": 0.1, "status": "ok", "attrs": {"bad": {1, 2}}}
        with pytest.raises(TypeError):
            write_trace(tmp_path / "t.jsonl", [span], trace_id="x")

    def test_validator_flags_non_primitive_attrs(self, tmp_path):
        path = tmp_path / "attrs.jsonl"
        path.write_text(
            "\n".join([
                json.dumps({"record": "meta", "format": 2, "trace_id": "x"}),
                json.dumps({"record": "span", "span_id": "s1", "parent_id": None,
                            "name": "root", "start": 1.0, "seconds": 0.1,
                            "status": "ok", "attrs": {"corpus": [1, 2]}}),
            ]) + "\n"
        )
        errors = "\n".join(validate_trace(path))
        assert "attr 'corpus' is not a primitive (list)" in errors
        assert "sanitize at span finish" in errors


class TestRenderers:
    def test_tree_shows_nesting_and_attrs(self):
        tracer, _registry = sample_trace()
        tree = render_tree(tracer.spans())
        assert "3 spans" in tree.splitlines()[0]
        assert "└─ root" in tree and "{corpus=2}" in tree
        assert "├─ child-a" in tree and "└─ child-b" in tree

    def test_tree_promotes_orphans_and_truncates(self):
        spans = [
            {"name": f"s{i}", "span_id": str(i), "parent_id": "missing",
             "start": float(i), "seconds": 0.0, "status": "ok", "attrs": {}}
            for i in range(5)
        ]
        tree = render_tree(spans, max_spans=3)
        assert "s0" in tree and "truncated at 3" in tree
        assert render_tree([]) == "(empty trace)"

    def test_error_status_is_flagged(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert "[ERROR]" in render_tree(tracer.spans())

    def test_span_stats_aggregates_by_name(self):
        tracer, registry = sample_trace()
        stats = span_stats(tracer.spans())
        assert stats["root"][0] == 1
        assert set(stats) == {"root", "child-a", "child-b"}
        text = render_stats(tracer.spans(), registry.snapshot())
        assert "root" in text and "hits" in text and "n=1" in text


class TestValidate:
    def write_sample(self, tmp_path):
        tracer, registry = sample_trace()
        path = tmp_path / "trace.jsonl"
        write_trace(path, tracer.spans(), registry.snapshot(),
                    trace_id=tracer.trace_id)
        return path

    def test_clean_trace_validates(self, tmp_path):
        assert validate_trace(self.write_sample(tmp_path)) == []

    def test_missing_file(self, tmp_path):
        errors = validate_trace(tmp_path / "nope.jsonl")
        assert errors and "cannot read" in errors[0]

    def test_corruption_is_detected(self, tmp_path):
        path = self.write_sample(tmp_path)
        lines = path.read_text().splitlines()
        # Corrupt one span: break its parent link and negate its duration.
        record = json.loads(lines[2])
        record["parent_id"] = "does-not-exist"
        record["seconds"] = -1.0
        lines[2] = json.dumps(record)
        path.write_text("\n".join(lines) + "\n")
        errors = validate_trace(path)
        assert any("unresolved parent" in e or "parent" in e for e in errors)
        assert any("negative duration" in e for e in errors)

    def test_structural_violations(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            "\n".join([
                json.dumps({"record": "span", "span_id": "a", "name": "x",
                            "start": 1.0, "seconds": 0.1, "status": "weird"}),
                json.dumps({"record": "span", "span_id": "a", "name": "y",
                            "start": 2.0, "seconds": 0.1, "status": "ok"}),
                json.dumps({"record": "metric", "name": "h", "type": "histogram",
                            "buckets": [1.0], "counts": [1], "sum": 0.5,
                            "count": 1}),
                "not json",
            ]) + "\n"
        )
        errors = "\n".join(validate_trace(path))
        assert "no meta record" in errors
        assert "duplicate span ids" in errors
        assert "status 'weird'" in errors
        assert "buckets+1" in errors or "counts" in errors
        assert "invalid JSON" in errors

    def test_lineage_contract(self, tmp_path):
        path = tmp_path / "lineage.jsonl"
        path.write_text(
            "\n".join([
                json.dumps({"record": "meta", "format": 2, "trace_id": "x"}),
                json.dumps({"record": "span", "span_id": "s1", "parent_id": None,
                            "name": "root", "start": 1.0, "seconds": 0.1,
                            "status": "ok", "attrs": {}}),
                # Good record: linked to s1.
                json.dumps({"record": "lineage", "object_kind": "net",
                            "object_id": "n", "stage": "scaling",
                            "verb": "approximated", "detail": "", "span_id": "s1",
                            "design": None, "dialect": None}),
                # Bad verb, dangling span link, missing object_id.
                json.dumps({"record": "lineage", "object_kind": "net",
                            "object_id": "", "stage": "scaling",
                            "verb": "mangled", "detail": "", "span_id": "ghost",
                            "design": None, "dialect": None}),
            ]) + "\n"
        )
        errors = "\n".join(validate_trace(path))
        assert "lineage verb 'mangled' invalid" in errors
        assert "lineage span_id 'ghost' not in this trace" in errors
        assert "lineage record without a string object_id" in errors
        assert "'s1'" not in errors  # the linked record is clean

    def test_cli_entry_point(self, tmp_path, capsys):
        good = self.write_sample(tmp_path)
        assert validate_main([str(good)]) == 0
        out = capsys.readouterr().out
        assert "OK" in out and "3 spans" in out
        bad = tmp_path / "empty.jsonl"
        bad.write_text("")
        assert validate_main([str(bad)]) == 1
