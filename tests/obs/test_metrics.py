"""Metrics registry: instruments, snapshots, merging, pickling, no-op mode."""

import pickle

import pytest

from cadinterop.obs import (
    DEFAULT_BUCKETS,
    NULL_METRICS,
    MetricsRegistry,
    disable_metrics,
    enable_metrics,
    get_metrics,
    render_metrics,
)


class TestInstruments:
    def test_counter_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert registry.counter("hits") is counter  # get-or-create

    def test_gauge_keeps_last_value(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("workers")
        gauge.set(2)
        gauge.set(8)
        assert gauge.value == 8

    def test_histogram_buckets_and_moments(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            histogram.observe(value)
        assert histogram.counts == [1, 2, 1]  # <=0.1, <=1.0, overflow
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(6.05)
        assert histogram.mean == pytest.approx(6.05 / 4)

    def test_histogram_needs_boundaries(self):
        with pytest.raises(ValueError, match="bucket"):
            MetricsRegistry().histogram("empty", buckets=())

    def test_kind_mismatch_is_a_type_error(self):
        registry = MetricsRegistry()
        registry.counter("n")
        with pytest.raises(TypeError, match="counter"):
            registry.gauge("n")
        with pytest.raises(TypeError, match="counter"):
            registry.histogram("n")


class TestSnapshotAndMerge:
    def build(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(1.5)
        registry.histogram("h", buckets=(0.5,)).observe(0.25)
        return registry

    def test_snapshot_is_plain_data(self):
        snapshot = self.build().snapshot()
        assert snapshot["c"] == {"type": "counter", "value": 3}
        assert snapshot["g"]["type"] == "gauge"
        assert snapshot["g"]["value"] == 1.5
        assert snapshot["g"]["seq"] > 0  # write stamp for merge ordering
        assert snapshot["h"]["counts"] == [1, 0]
        import json

        json.dumps(snapshot)  # must be JSON-serializable as-is

    def test_merge_adds_counters_and_histograms(self):
        left, right = self.build(), self.build()
        left.merge(right.snapshot())
        snapshot = left.snapshot()
        assert snapshot["c"]["value"] == 6
        assert snapshot["h"]["count"] == 2
        assert snapshot["g"]["value"] == 1.5  # newest write wins

    def test_gauge_merge_keeps_newest_regardless_of_order(self):
        # The regression: last-write-wins used to depend on which worker
        # snapshot merged last, i.e. on pool join order.
        older = MetricsRegistry()
        older.gauge("g").set(1.0)
        newer = MetricsRegistry()
        newer.gauge("g").set(2.0)

        forward = MetricsRegistry()
        forward.merge(older.snapshot())
        forward.merge(newer.snapshot())
        backward = MetricsRegistry()
        backward.merge(newer.snapshot())
        backward.merge(older.snapshot())
        assert forward.gauge("g").value == 2.0
        assert backward.gauge("g").value == 2.0

    def test_gauge_seq_is_strictly_monotonic_in_process(self):
        gauge = MetricsRegistry().gauge("g")
        seqs = []
        for value in range(5):
            gauge.set(value)
            seqs.append(gauge.seq)
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_gauge_merge_accepts_preseq_snapshots(self):
        # Format-1 trace files carry gauges without a seq stamp; a fresh
        # registry (seq 0) must still adopt them.
        registry = MetricsRegistry()
        registry.merge({"g": {"type": "gauge", "value": 7.0}})
        assert registry.gauge("g").value == 7.0
        # ... but any stamped local write beats the stampless snapshot.
        registry.gauge("g").set(9.0)
        registry.merge({"g": {"type": "gauge", "value": 7.0}})
        assert registry.gauge("g").value == 9.0

    def test_merge_rejects_differing_buckets(self):
        left = MetricsRegistry()
        left.histogram("h", buckets=(0.5,))
        right = MetricsRegistry()
        right.histogram("h", buckets=(0.25, 0.5)).observe(0.1)
        with pytest.raises(ValueError, match="boundaries differ"):
            left.merge(right.snapshot())

    def test_merge_rejects_unknown_type(self):
        with pytest.raises(ValueError, match="unknown instrument"):
            MetricsRegistry().merge({"x": {"type": "meter", "value": 1}})

    def test_registry_survives_pickling(self):
        clone = pickle.loads(pickle.dumps(self.build()))
        clone.counter("c").inc()  # lock was recreated; instruments work
        assert clone.counter("c").value == 4
        assert clone.snapshot()["h"]["count"] == 1

    def test_render_table(self):
        table = self.build().render_table()
        assert "c" in table and "counter" in table and "3" in table
        assert "n=1" in table
        assert render_metrics({}) .startswith("metric")


class TestGlobalSingleton:
    def test_disabled_by_default(self):
        assert get_metrics() is NULL_METRICS
        assert not get_metrics().enabled

    def test_null_registry_is_inert(self):
        NULL_METRICS.counter("x").inc()
        NULL_METRICS.gauge("y").set(3)
        NULL_METRICS.histogram("z").observe(0.1)
        assert NULL_METRICS.snapshot() == {}
        assert NULL_METRICS.counter("x").value == 0

    def test_enable_disable_roundtrip(self):
        registry = enable_metrics()
        assert get_metrics() is registry
        get_metrics().counter("seen").inc()
        assert registry.snapshot()["seen"]["value"] == 1
        disable_metrics()
        assert get_metrics() is NULL_METRICS

    def test_default_buckets_are_sorted_and_subsecond_heavy(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
        assert DEFAULT_BUCKETS[0] <= 0.001 and DEFAULT_BUCKETS[-1] >= 10.0
