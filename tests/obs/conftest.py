"""Shared fixtures: every obs test leaves the global singletons disabled."""

import pytest

from cadinterop.obs import disable_lineage, disable_metrics, disable_tracing


@pytest.fixture(autouse=True)
def _reset_obs_globals():
    yield
    disable_tracing()
    disable_metrics()
    disable_lineage()
