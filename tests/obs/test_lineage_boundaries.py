"""Boundary instrumentation: lineage parity with each pipeline's IssueLog.

The acceptance contract for the audit trail: lineage is not a second,
independent opinion about what was lost — every ``approximated`` /
``dropped`` record corresponds one-to-one with the diagnostic the pipeline
already logs, and every record links to a span in the same trace.
"""

import pytest

from cadinterop.common.diagnostics import Category, IssueLog, Severity
from cadinterop.hdl.cosim import BridgeSignal, CoSimulation
from cadinterop.hdl.parser import parse_module
from cadinterop.hdl.synth import synthesize
from cadinterop.obs import enable_lineage, enable_tracing, get_lineage
from cadinterop.pnr.backplane import convey
from cadinterop.pnr.dialects import TOOL_P, TOOL_R
from cadinterop.pnr.samples import build_cell_library, build_floorplan
from cadinterop.rtl2gds import gate_netlist_to_pnr, strip_testbench
from cadinterop.schematic.migrate import Migrator
from cadinterop.schematic.samples import (
    build_sample_plan,
    build_vl_libraries,
    generate_chain_schematic,
)
from cadinterop.schematic2pnr import sample_binding_table, schematic_to_pnr
from cadinterop.workflow import FlowTemplate, PythonAction, StepDef, WorkflowEngine


@pytest.fixture(scope="module")
def vl_libs():
    return build_vl_libraries()


def by_verb(records, verb):
    return [r for r in records if r["verb"] == verb]


class TestMigrateBoundary:
    def migrate(self, vl_libs, offgrid_labels=0):
        cell = generate_chain_schematic(
            vl_libs, pages=2, chains_per_page=2, stages=3,
            offgrid_labels=offgrid_labels,
        )
        plan = build_sample_plan(source_libraries=vl_libs)
        recorder = enable_lineage()
        result = Migrator(plan).migrate(cell)
        return result, recorder.records()

    def test_snap_parity_with_issue_log(self, vl_libs):
        result, records = self.migrate(vl_libs, offgrid_labels=2)
        snaps = by_verb(records, "approximated")
        warnings = [
            issue for issue in result.log
            if issue.category is Category.SCALING
            and issue.severity is Severity.WARNING
        ]
        assert len(snaps) == len(warnings) == 2
        assert all(r["stage"] == "scaling" for r in snaps)
        assert all("snapped" in r["detail"] for r in snaps)

    def test_on_grid_corpus_has_no_loss(self, vl_libs):
        _result, records = self.migrate(vl_libs)
        assert not by_verb(records, "approximated")
        assert not by_verb(records, "dropped")

    def test_stage_coverage_and_attribution(self, vl_libs):
        result, records = self.migrate(vl_libs)
        stages = {r["stage"] for r in records}
        assert {"replacement", "bus-syntax", "connectors"} <= stages
        # Symbol mapping: every replaced instance is a transform.
        swaps = [r for r in records if r["stage"] == "replacement"]
        assert len(swaps) == result.replacements.replacements
        assert all(r["verb"] == "transformed" for r in swaps)
        # Cross-page net resolution: connectors exist only in the target.
        connectors = [r for r in records if r["stage"] == "connectors"]
        assert connectors
        assert all(r["verb"] == "synthesized" for r in connectors)
        assert len(connectors) == (
            result.connectors.offpage_added + result.connectors.hierarchy_added
        )
        # Ambient context stamped everything without signature changes.
        assert all(r["design"] == result.schematic.name for r in records)
        assert all(r["dialect"] and "->" in r["dialect"] for r in records)

    def test_every_record_links_to_a_traced_span(self, vl_libs):
        tracer = enable_tracing()
        _result, records = self.migrate(vl_libs, offgrid_labels=1)
        span_ids = {span["span_id"] for span in tracer.spans()}
        assert records
        assert all(r["span_id"] in span_ids for r in records)


class TestBackplaneBoundary:
    def test_dropped_records_match_feature_gap_issues(self):
        recorder = enable_lineage()
        log = IssueLog()
        payload = convey(build_floorplan(), build_cell_library(), TOOL_R, log)
        dropped = by_verb(recorder.records(), "dropped")
        gaps = [i for i in log if i.category is Category.FEATURE_GAP]
        assert payload.dropped  # TOOL_R is the lossy target
        assert len(dropped) == len(payload.dropped) == len(gaps)
        assert all(r["stage"] == "pnr:convey" for r in dropped)
        assert all(r["dialect"] == TOOL_R.name for r in dropped)
        # The accepted intents are on the books too, not just the losses.
        preserved = by_verb(recorder.records(), "preserved")
        assert preserved

    def test_full_support_tool_drops_nothing(self):
        recorder = enable_lineage()
        payload = convey(build_floorplan(), build_cell_library(), TOOL_P)
        assert payload.dropped == []
        assert not by_verb(recorder.records(), "dropped")
        assert by_verb(recorder.records(), "preserved")

    def test_derived_access_mismatch_is_approximated(self):
        from cadinterop.pnr.dialects import TOOL_Q

        recorder = enable_lineage()
        log = IssueLog()
        convey(build_floorplan(), build_cell_library(), TOOL_Q, log)
        approximations = by_verb(recorder.records(), "approximated")
        mismatches = [i for i in log if "derives access" in i.message]
        assert len(approximations) == len(mismatches) > 0
        assert all(r["object_kind"] == "pin-access" for r in approximations)


class TestCosimBoundary:
    def producer(self):
        return parse_module(
            """
            module producer ();
              reg raw, en; wire data;
              bufif1 b1 (data, raw, en);
              initial begin
                raw = 1'b1; en = 1'b1;
                #10 en = 1'b0;
              end
            endmodule
            """
        )

    def consumer(self):
        return parse_module(
            """
            module consumer ();
              reg din;
            endmodule
            """
        )

    def run(self, value_mode):
        recorder = enable_lineage()
        cosim = CoSimulation(
            self.producer(), self.consumer(),
            [BridgeSignal("left", "data", "din")], value_mode=value_mode,
        )
        cosim.run(15)
        return [
            r for r in recorder.records() if r["stage"] == "cosim:exchange"
        ]

    def test_naive_coercion_is_an_approximation(self):
        records = self.run("naive")
        lossy = by_verb(records, "approximated")
        assert lossy, "z forced to 0 must be recorded as a loss"
        assert all(r["object_kind"] == "signal" for r in lossy)
        assert all(r["object_id"] == "data->din" for r in lossy)
        assert any("z" in r["detail"] for r in lossy)

    def test_correct_projection_is_not_a_loss(self):
        records = self.run("correct")
        assert not by_verb(records, "approximated")
        assert not by_verb(records, "dropped")


class TestWorkflowBoundary:
    def test_artifact_facets_per_step(self):
        recorder = enable_lineage()
        template = FlowTemplate("t")
        template.add_step(
            StepDef("produce",
                    action=PythonAction(lambda api: (api.set_variable("n", 4), 0)[1]))
        )
        template.add_step(
            StepDef("consume",
                    action=PythonAction(lambda api: api.get_variable("n", 0) - 4),
                    start_after=("produce",))
        )
        engine = WorkflowEngine()
        instance = engine.instantiate(template, block="blockA")
        assert engine.run(instance).ok
        records = [
            r for r in recorder.records() if r["stage"].startswith("workflow:")
        ]
        assert [(r["stage"], r["verb"], r["object_id"]) for r in records] == [
            ("workflow:produce", "synthesized", "n"),
            ("workflow:consume", "preserved", "n"),
        ]
        assert all(r["design"] == "blockA" for r in records)

    def test_missing_variable_read_is_not_a_facet(self):
        recorder = enable_lineage()
        template = FlowTemplate("t")
        template.add_step(
            StepDef("probe",
                    action=PythonAction(lambda api: api.get_variable("ghost", 0)))
        )
        engine = WorkflowEngine()
        engine.run(engine.instantiate(template))
        assert not recorder.records()


class TestHandoffBoundaries:
    def test_schematic2pnr_records_bindings(self, vl_libs):
        cell = generate_chain_schematic(vl_libs, pages=2, chains_per_page=2,
                                        stages=4)
        result = Migrator(build_sample_plan(source_libraries=vl_libs)).migrate(cell)
        recorder = enable_lineage()
        conversion = schematic_to_pnr(
            result.schematic, sample_binding_table(), build_cell_library()
        )
        assert conversion.ok
        records = recorder.records()
        assert all(r["stage"] == "schematic2pnr" for r in records)
        bound = by_verb(records, "transformed")
        assert len(bound) == len(conversion.design.instances)
        pads = by_verb(records, "synthesized")
        assert len(pads) == len(conversion.port_pads)
        assert all(r["object_kind"] == "pad" for r in pads)
        assert all(r["design"] == result.schematic.name for r in records)

    def test_schematic2pnr_unbound_symbols_are_dropped(self, vl_libs):
        from cadinterop.schematic2pnr import BindingTable

        cell = generate_chain_schematic(vl_libs, pages=1, chains_per_page=1,
                                        stages=2)
        result = Migrator(build_sample_plan(source_libraries=vl_libs)).migrate(cell)
        recorder = enable_lineage()
        conversion = schematic_to_pnr(
            result.schematic, BindingTable(), build_cell_library()
        )
        assert not conversion.ok
        dropped = by_verb(recorder.records(), "dropped")
        assert len(dropped) == len(conversion.skipped_instances) > 0
        assert all("no layout cell bound" in r["detail"] for r in dropped)

    def test_rtl2gds_records_lowering(self):
        netlist = strip_testbench(
            synthesize(parse_module(
                """
                module tiny (a, b, y);
                  input a, b; output y;
                  reg y, a, b;
                  always @(*) y = a & b;
                  initial begin a = 1'b1; b = 1'b1; end
                endmodule
                """
            )).netlist
        )
        recorder = enable_lineage()
        conversion = gate_netlist_to_pnr(netlist, build_cell_library())
        assert conversion.ok
        records = [
            r for r in recorder.records() if r["stage"] == "rtl2gds"
        ]
        lowered = by_verb(records, "transformed")
        assert lowered and all("cell(s)" in r["detail"] for r in lowered)
        assert not by_verb(records, "dropped")
        assert all(r["design"] == netlist.name for r in records)
