"""Span tracer: nesting, decorator, error capture, worker merge, no-op mode."""

import pickle

import pytest

from cadinterop.obs import (
    NULL_SPAN,
    NULL_TRACER,
    Tracer,
    current_span_id,
    disable_tracing,
    enable_tracing,
    get_tracer,
    set_tracer,
    traced,
)


class TestNesting:
    def test_parent_ids_follow_lexical_nesting(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                with tracer.span("leaf") as leaf:
                    assert leaf.parent_id == inner.span_id
                assert current_span_id() == inner.span_id
            assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert current_span_id() is None
        names = [s["name"] for s in tracer.spans()]
        assert names == ["outer", "inner", "leaf"]

    def test_siblings_share_a_parent(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == b.parent_id == root.span_id

    def test_explicit_parent_overrides_context(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("detached", parent=None) as span:
                pass
        assert span.parent_id is None

    def test_span_ids_are_unique(self):
        tracer = Tracer()
        for _ in range(50):
            with tracer.span("s"):
                pass
        ids = [s["span_id"] for s in tracer.spans()]
        assert len(set(ids)) == 50

    def test_attach_detach_reparents_across_contexts(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            pass
        token = tracer.attach(root.span_id)
        try:
            with tracer.span("adopted") as span:
                pass
        finally:
            tracer.detach(token)
        assert span.parent_id == root.span_id
        assert current_span_id() is None


class TestSpanData:
    def test_attrs_and_timing(self):
        tracer = Tracer()
        with tracer.span("work", kind="test") as span:
            span.set(items=3)
        record = tracer.spans()[0]
        assert record["attrs"] == {"kind": "test", "items": 3}
        assert record["seconds"] >= 0
        assert record["start"] > 0
        assert record["status"] == "ok"

    def test_exception_marks_error_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        record = tracer.spans()[0]
        assert record["status"] == "error"
        assert "ValueError: nope" in record["attrs"]["error"]

    def test_decorator_uses_function_name_by_default(self):
        tracer = Tracer()
        set_tracer(tracer)
        try:
            @traced()
            def compute():
                return 7

            @traced("custom:name", flavor="x")
            def other():
                return 8

            assert compute() == 7 and other() == 8
        finally:
            disable_tracing()
        names = {s["name"] for s in tracer.spans()}
        # Default label is the function's __qualname__.
        assert any(name.endswith(".compute") for name in names)
        assert "custom:name" in names

    def test_drain_empties_the_buffer(self):
        tracer = Tracer()
        with tracer.span("one"):
            pass
        drained = tracer.drain()
        assert [s["name"] for s in drained] == ["one"]
        assert len(tracer) == 0

    def test_adopt_reroots_orphans_only(self):
        parent = Tracer()
        with parent.span("root") as root:
            pass
        child = Tracer(trace_id=parent.trace_id)
        with child.span("worker-root"):
            with child.span("worker-leaf"):
                pass
        parent.adopt(child.drain(), parent_id=root.span_id)
        by_name = {s["name"]: s for s in parent.spans()}
        assert by_name["worker-root"]["parent_id"] == root.span_id
        leaf = by_name["worker-leaf"]
        assert leaf["parent_id"] == by_name["worker-root"]["span_id"]

    def test_span_dicts_are_picklable(self):
        tracer = Tracer()
        with tracer.span("w", design="x"):
            pass
        spans = tracer.drain()
        assert pickle.loads(pickle.dumps(spans)) == spans


class TestGlobalSingleton:
    def test_disabled_by_default(self):
        assert get_tracer() is NULL_TRACER
        assert not get_tracer().enabled

    def test_null_tracer_is_inert(self):
        with NULL_TRACER.span("anything", attr=1) as span:
            assert span is NULL_SPAN
            span.set(more=2)  # no-op, no error
        assert len(NULL_TRACER) == 0
        assert NULL_TRACER.spans() == []
        assert NULL_TRACER.drain() == []
        assert current_span_id() is None

    def test_enable_disable_roundtrip(self):
        tracer = enable_tracing()
        assert get_tracer() is tracer and tracer.enabled
        with get_tracer().span("visible"):
            pass
        assert len(tracer) == 1
        disable_tracing()
        assert get_tracer() is NULL_TRACER

    def test_enable_with_fixed_trace_id(self):
        tracer = enable_tracing("feedbeef")
        assert tracer.trace_id == "feedbeef"
