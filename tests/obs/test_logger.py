"""Span-aware logging: id stamping, namespacing, one-time configuration."""

import logging

from cadinterop.obs import enable_tracing, get_logger, get_tracer
from cadinterop.obs.logger import ROOT_LOGGER, SpanContextFilter


class _Capture(logging.Handler):
    def __init__(self):
        super().__init__(level=logging.DEBUG)
        self.records = []

    def emit(self, record):
        self.records.append(record)


def capture(logger):
    handler = _Capture()
    logger.addHandler(handler)
    logger.setLevel(logging.DEBUG)
    return handler


class TestGetLogger:
    def test_names_are_rooted_under_cadinterop(self):
        assert get_logger("farm.scheduler").name == "cadinterop.farm.scheduler"
        assert get_logger("cadinterop.x").name == "cadinterop.x"
        assert get_logger(ROOT_LOGGER).name == ROOT_LOGGER

    def test_root_handler_configured_once(self):
        get_logger("a")
        get_logger("b")
        root = logging.getLogger(ROOT_LOGGER)
        assert len(root.handlers) >= 1
        stamped = [h for h in root.handlers
                   if any(isinstance(f, SpanContextFilter) for f in h.filters)]
        assert stamped

    def test_records_carry_dashes_when_tracing_off(self):
        logger = get_logger("test.quiet")
        handler = capture(logger)
        try:
            logger.warning("hello")
        finally:
            logger.removeHandler(handler)
        record = handler.records[0]
        assert record.trace_id == "-" and record.span_id == "-"

    def test_records_carry_live_span_ids(self):
        tracer = enable_tracing("deadbeef00")
        logger = get_logger("test.traced")
        handler = capture(logger)
        try:
            with get_tracer().span("op") as span:
                logger.warning("inside")
        finally:
            logger.removeHandler(handler)
        record = handler.records[0]
        assert record.trace_id == "deadbeef00" == tracer.trace_id
        assert record.span_id == span.span_id

    def test_format_string_renders(self):
        logger = get_logger("test.fmt")
        handler = capture(logger)
        try:
            logger.warning("formatted %d", 7)
        finally:
            logger.removeHandler(handler)
        from cadinterop.obs.logger import LOG_FORMAT

        line = logging.Formatter(LOG_FORMAT).format(handler.records[0])
        assert "formatted 7" in line and "[-/-]" in line
