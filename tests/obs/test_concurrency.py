"""Worker-span merging: one coherent trace across farm executors.

The acceptance bar for the observability layer: a traced
``MigrationFarm.run`` over the thread or process executor yields ONE
trace — every per-design ``migrate`` span parented under the single
``farm:run`` root, every stage span parented under its design's
``migrate`` span, and start times consistent with that nesting — even
though the spans were recorded in other threads or other processes.
"""

import threading

import pytest

from cadinterop.farm import MigrationFarm
from cadinterop.obs import Tracer, disable_tracing, enable_tracing, get_tracer
from cadinterop.schematic.samples import (
    build_sample_plan,
    build_vl_libraries,
    generate_chain_schematic,
)

DESIGNS = 4


@pytest.fixture(scope="module")
def vl_libs():
    return build_vl_libraries()


@pytest.fixture(scope="module")
def corpus(vl_libs):
    return [
        generate_chain_schematic(vl_libs, pages=1, chains_per_page=2,
                                 stages=3, seed=index)
        for index in range(DESIGNS)
    ]


def traced_farm_run(vl_libs, corpus, executor):
    plan = build_sample_plan(source_libraries=vl_libs)
    tracer = enable_tracing()
    try:
        report = MigrationFarm(plan, jobs=2, executor=executor).run(corpus)
        spans = tracer.spans()
        trace_id = tracer.trace_id
    finally:
        disable_tracing()
    assert report.migrated == DESIGNS
    return spans, trace_id


def assert_single_coherent_trace(spans):
    by_id = {span["span_id"]: span for span in spans}
    assert len(by_id) == len(spans), "span ids must be unique across workers"

    roots = [span for span in spans if span["parent_id"] is None]
    assert [span["name"] for span in roots] == ["farm:run"]
    run_span = roots[0]

    migrates = [span for span in spans if span["name"] == "migrate"]
    assert len(migrates) == DESIGNS
    for span in migrates:
        assert span["parent_id"] == run_span["span_id"]

    stage_spans = [s for s in spans if s["name"].startswith("migrate:")]
    assert stage_spans, "per-stage spans must survive the merge"
    migrate_ids = {span["span_id"] for span in migrates}
    for span in stage_spans:
        assert span["parent_id"] in migrate_ids
        parent = by_id[span["parent_id"]]
        # Ordered: a child cannot start before its parent.
        assert span["start"] >= parent["start"]

    # Every design contributed a full stage set under its own migrate span.
    per_parent = {}
    for span in stage_spans:
        per_parent.setdefault(span["parent_id"], set()).add(span["name"])
    assert len(per_parent) == DESIGNS
    stage_sets = list(per_parent.values())
    assert all(names == stage_sets[0] for names in stage_sets)

    # spans() contract: ordered by start time.
    starts = [span["start"] for span in spans]
    assert starts == sorted(starts)


class TestExecutorMerge:
    def test_inline_executor(self, vl_libs, corpus):
        spans, _ = traced_farm_run(vl_libs, corpus, "inline")
        assert_single_coherent_trace(spans)

    def test_thread_executor_merges_into_one_trace(self, vl_libs, corpus):
        spans, _ = traced_farm_run(vl_libs, corpus, "thread")
        assert_single_coherent_trace(spans)

    def test_process_executor_merges_into_one_trace(self, vl_libs, corpus):
        spans, trace_id = traced_farm_run(vl_libs, corpus, "process")
        assert_single_coherent_trace(spans)
        # Worker spans were minted in other processes: pid-prefixed ids
        # must differ from the parent's for at least one span.
        import os

        prefix = f"{os.getpid():x}-"
        assert any(not s["span_id"].startswith(prefix) for s in spans)

    def test_executors_disagree_only_on_ids(self, vl_libs, corpus):
        names = {}
        for executor in ("inline", "thread", "process"):
            spans, _ = traced_farm_run(vl_libs, corpus, executor)
            names[executor] = sorted(span["name"] for span in spans)
        assert names["inline"] == names["thread"] == names["process"]


class TestTracerThreadSafety:
    def test_concurrent_spans_do_not_corrupt_the_buffer(self):
        tracer = Tracer()

        def worker(index):
            token = tracer.attach(None)
            try:
                with tracer.span(f"job{index}"):
                    for _ in range(20):
                        with tracer.span("step"):
                            pass
            finally:
                tracer.detach(token)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        spans = tracer.spans()
        assert len(spans) == 8 * 21
        job_ids = {s["span_id"] for s in spans if s["name"].startswith("job")}
        for span in spans:
            if span["name"] == "step":
                assert span["parent_id"] in job_ids

    def test_contextvar_isolation_between_threads(self):
        tracer = Tracer()
        seen = {}

        def worker(name):
            with tracer.span(name) as span:
                seen[name] = span.parent_id

        with tracer.span("main-root"):
            thread = threading.Thread(target=worker, args=("other",))
            thread.start()
            thread.join()
        # A fresh thread starts with an empty context: no inherited parent.
        assert seen["other"] is None
