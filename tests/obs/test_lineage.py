"""Lineage recorder: verbs, context, span links, merge, and LossReport."""

import pytest

from cadinterop.obs import (
    LOSS_VERBS,
    NULL_LINEAGE,
    VERBS,
    LineageRecorder,
    LossReport,
    Tracer,
    disable_lineage,
    enable_lineage,
    enable_metrics,
    get_lineage,
    set_tracer,
)


class TestRecorder:
    def test_record_fields_and_order(self):
        recorder = LineageRecorder()
        recorder.record("net", "CLK", "bus-syntax", "transformed",
                        detail="CLK -> clk")
        recorder.record("point", "w1", "scaling", "approximated")
        records = recorder.records()
        assert len(recorder) == 2
        assert records[0]["object_kind"] == "net"
        assert records[0]["object_id"] == "CLK"
        assert records[0]["stage"] == "bus-syntax"
        assert records[0]["verb"] == "transformed"
        assert records[0]["detail"] == "CLK -> clk"
        assert records[1]["verb"] == "approximated"

    def test_unknown_verb_rejected(self):
        with pytest.raises(ValueError, match="unknown lineage verb"):
            LineageRecorder().record("net", "x", "stage", "mangled")

    def test_verb_taxonomy_is_closed(self):
        assert VERBS == (
            "preserved", "transformed", "approximated", "dropped", "synthesized"
        )
        assert set(LOSS_VERBS) <= set(VERBS)

    def test_links_to_active_span(self):
        tracer = set_tracer(Tracer())
        recorder = LineageRecorder()
        try:
            with tracer.span("migrate") as span:
                record = recorder.record("net", "n", "scaling", "preserved")
            assert record["span_id"] == span.span_id
        finally:
            set_tracer(None)
        outside = recorder.record("net", "m", "scaling", "preserved")
        assert outside["span_id"] is None

    def test_context_sets_ambient_attribution(self):
        recorder = LineageRecorder()
        with recorder.context(design="d1", dialect="a->b"):
            inherited = recorder.record("net", "n", "s", "preserved")
            with recorder.context(design="d2"):  # dialect inherited
                nested = recorder.record("net", "n", "s", "preserved")
        after = recorder.record("net", "n", "s", "preserved")
        assert (inherited["design"], inherited["dialect"]) == ("d1", "a->b")
        assert (nested["design"], nested["dialect"]) == ("d2", "a->b")
        assert after["design"] is None and after["dialect"] is None

    def test_explicit_kwargs_beat_ambient(self):
        recorder = LineageRecorder()
        with recorder.context(design="ambient", dialect="x->y"):
            record = recorder.record("net", "n", "s", "preserved",
                                     design="explicit")
        assert record["design"] == "explicit"
        assert record["dialect"] == "x->y"

    def test_drain_and_adopt_merge_like_spans(self):
        worker = LineageRecorder()
        worker.record("net", "a", "s", "preserved")
        worker.record("net", "b", "s", "dropped")
        shipped = worker.drain()
        assert len(worker) == 0
        parent = LineageRecorder()
        parent.record("net", "c", "s", "preserved")
        parent.adopt(shipped)
        assert [r["object_id"] for r in parent.records()] == ["c", "a", "b"]

    def test_records_feed_metrics_counters(self):
        registry = enable_metrics()
        recorder = LineageRecorder()
        recorder.record("net", "a", "s", "dropped")
        recorder.record("net", "b", "s", "dropped")
        assert registry.counter("lineage.dropped").value == 2


class TestSingleton:
    def test_disabled_by_default_and_inert(self):
        assert get_lineage() is NULL_LINEAGE
        assert not get_lineage().enabled
        assert NULL_LINEAGE.record("net", "x", "s", "dropped") is None
        with NULL_LINEAGE.context(design="d"):
            pass
        assert NULL_LINEAGE.records() == []
        assert NULL_LINEAGE.drain() == []
        assert len(NULL_LINEAGE) == 0

    def test_enable_disable_roundtrip(self):
        recorder = enable_lineage()
        assert get_lineage() is recorder
        get_lineage().record("net", "x", "s", "preserved")
        assert len(recorder) == 1
        disable_lineage()
        assert get_lineage() is NULL_LINEAGE


def records_fixture():
    return [
        {"object_kind": "point", "object_id": "w", "stage": "scaling",
         "verb": "approximated", "detail": "", "span_id": "s1",
         "design": "d1", "dialect": "a->b"},
        {"object_kind": "intent", "object_id": "i", "stage": "pnr:convey",
         "verb": "dropped", "detail": "", "span_id": "s2",
         "design": "d1", "dialect": "tool-x"},
        {"object_kind": "net", "object_id": "n", "stage": "bus-syntax",
         "verb": "transformed", "detail": "", "span_id": None,
         "design": "d2", "dialect": "a->b"},
    ]


class TestLossReport:
    def test_counts_and_matrices(self):
        report = LossReport.from_records(records_fixture())
        assert report.total == 3
        assert report.losses == 2
        assert report.by_verb["approximated"] == 1
        assert report.stage_count("pnr:convey", "dropped") == 1
        assert report.stage_count("bus-syntax", "transformed") == 1
        assert report.stage_count("bus-syntax", "dropped") == 0
        assert report.dialects["a->b"]["transformed"] == 1
        assert report.unlinked == 1  # the record without a span_id

    def test_top_lossy_designs_ranked_and_nonzero_only(self):
        report = LossReport.from_records(records_fixture())
        assert report.top_lossy_designs() == [("d1", 2)]

    def test_rejects_unknown_verb(self):
        with pytest.raises(ValueError, match="unknown verb"):
            LossReport.from_records([{"verb": "vanished"}])

    def test_merge_adds_everything(self):
        left = LossReport.from_records(records_fixture())
        right = LossReport.from_records(records_fixture())
        left.merge(right)
        assert left.total == 6
        assert left.losses == 4
        assert left.designs["d1"]["dropped"] == 2
        assert left.unlinked == 2

    def test_as_dict_and_render(self):
        report = LossReport.from_records(records_fixture())
        data = report.as_dict()
        assert data["total"] == 3 and data["losses"] == 2
        assert data["matrix"]["scaling"]["approximated"] == 1
        text = report.render()
        assert "3 records, 2 losses" in text
        assert "pnr:convey" in text and "a->b" in text
        assert "top lossy designs" in text and "d1" in text
        assert "without a span link" in text
        assert LossReport().render() == "(no lineage records)"
