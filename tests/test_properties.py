"""Cross-cutting property-based tests (hypothesis) on core invariants.

These target the load-bearing invariants the paper's remedies rely on:
synthesis must preserve combinational function, flattening must preserve
behavior and be reversibly named, race-free circuits must be
policy-independent, migration must preserve connectivity, and the bus
grammar must round-trip.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from cadinterop.hdl.ast_nodes import (
    Assign,
    Binary,
    Cond,
    Const,
    Expr,
    InitialBlock,
    Module,
    SensItem,
    Sensitivity,
    Unary,
    Var,
    expr_reads,
)
from cadinterop.hdl.flatten import flatten, unflatten_name
from cadinterop.hdl.parser import parse
from cadinterop.hdl.simulator import FIFO, LIFO, Simulator, evaluate, seeded_shuffle_policy
from cadinterop.hdl.synth import synthesize
from cadinterop.schematic.busnotation import COMPOSER_BUS_SYNTAX, VIEWDRAW_BUS_SYNTAX

# ---------------------------------------------------------------------------
# Random expression trees over a fixed variable set
# ---------------------------------------------------------------------------

VARS = ("va", "vb", "vc")


def expressions(max_depth=4):
    leaves = st.one_of(
        st.sampled_from([Var(v) for v in VARS]),
        st.sampled_from([Const("0"), Const("1")]),
    )

    def extend(children):
        return st.one_of(
            st.builds(Unary, st.sampled_from(["~", "!"]), children),
            st.builds(
                Binary,
                st.sampled_from(["&", "|", "^", "~^", "&&", "||", "==", "!="]),
                children,
                children,
            ),
            st.builds(Cond, children, children, children),
        )

    return st.recursive(leaves, extend, max_leaves=8)


def binary_values():
    return st.tuples(*[st.sampled_from("01") for _ in VARS])


class TestSynthesisPreservesFunction:
    @given(expr=expressions(), values=binary_values())
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_rtl_and_gates_agree_on_binary_inputs(self, expr, values):
        """synthesize() output computes the same function as the RTL.

        Expressions reading no signals are excluded: `always @(*) out = 0;`
        legitimately never triggers in simulation (its sensitivity set is
        empty) while synthesis ties the output — a real sim/synth semantic
        gap, covered separately in the synth tests.
        """
        from hypothesis import assume

        assume(expr_reads(expr))
        module = Module("prop")
        for name in VARS:
            module.add_net(name, "reg")
        module.add_net("out", "reg")
        module.add_always(
            Sensitivity(items=[SensItem(v) for v in sorted(expr_reads(expr))]),
            [Assign("out", expr)],
        )
        module.add_initial([
            Assign(name, Const(value)) for name, value in zip(VARS, values)
        ])

        rtl_sim = Simulator(module)
        rtl_sim.run(10)

        gates = synthesize(module).netlist
        gate_sim = Simulator(gates)
        gate_sim.run(10)
        assert gate_sim.value("out") == rtl_sim.value("out")

    @given(expr=expressions(), values=binary_values())
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_direct_evaluation_matches_simulation(self, expr, values):
        env = dict(zip(VARS, values))
        expected = evaluate(expr, env)
        module = Module("prop2")
        for name in VARS:
            module.add_net(name, "reg")
        module.add_net("out", "wire")
        module.add_assign("out", expr)
        module.add_initial([
            Assign(name, Const(value)) for name, value in zip(VARS, values)
        ])
        sim = Simulator(module)
        sim.run(10)
        assert sim.value("out") == expected


class TestPolicyIndependenceOfCleanDesigns:
    @given(
        values=binary_values(),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=30, deadline=None)
    def test_combinational_network_policy_independent(self, values, seed):
        """Pure combinational logic has no races: all policies agree."""
        source = """
        module net ();
          reg va, vb, vc;
          wire n1, n2, n3, out;
          assign n1 = va & vb;
          assign n2 = vb | vc;
          assign n3 = n1 ^ n2;
          assign out = n3 ? n1 : n2;
        endmodule
        """
        unit = parse(source)
        module = unit.top_module
        module.add_initial([
            Assign(name, Const(value)) for name, value in zip(VARS, values)
        ])
        results = set()
        for policy in (FIFO, LIFO, seeded_shuffle_policy(seed)):
            sim = Simulator(module, policy)
            sim.run(10)
            results.add(sim.value("out"))
        assert len(results) == 1


class TestFlattenBehaviorPreservation:
    @given(values=st.tuples(st.sampled_from("01"), st.sampled_from("01")))
    @settings(max_examples=16, deadline=None)
    def test_flat_equals_hierarchical_function(self, values):
        source = """
        module half (x, y, s, c);
          input x, y; output s, c;
          xor g1 (s, x, y);
          and g2 (c, x, y);
        endmodule
        module top (a, b, s, c);
          input a, b; output s, c;
          half u1 (.x(a), .y(b), .s(s), .c(c));
        endmodule
        """
        unit = parse(source)
        unit.top = "top"
        flat, name_map = flatten(unit)
        flat.add_net("a", "reg")
        flat.add_net("b", "reg")
        flat.add_initial([
            Assign("a", Const(values[0])), Assign("b", Const(values[1])),
        ])
        sim = Simulator(flat)
        sim.run(10)
        a, b = (v == "1" for v in values)
        assert sim.value("s") == ("1" if a != b else "0")
        assert sim.value("c") == ("1" if a and b else "0")

    @given(st.integers(min_value=1, max_value=4))
    @settings(max_examples=8, deadline=None)
    def test_every_flat_name_unflattens(self, depth):
        source = ["module leaf (p, q); input p; output q; assign q = ~p; endmodule"]
        previous = "leaf"
        for level in range(depth):
            name = f"lvl{level}"
            source.append(
                f"module {name} (p, q); input p; output q; wire m;"
                f" {previous} u1 (.p(p), .q(m));"
                f" {previous} u2 (.p(m), .q(q)); endmodule"
            )
            previous = name
        unit = parse("\n".join(source))
        unit.top = previous
        flat, name_map = flatten(unit)
        for flat_name in flat.nets:
            dotted = unflatten_name(name_map, flat_name)
            assert name_map.target_of(dotted) == flat_name


class TestBusGrammarRoundTrip:
    bases = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True)

    @given(base=bases, msb=st.integers(0, 99), lsb=st.integers(0, 99))
    @settings(max_examples=60)
    def test_explicit_refs_roundtrip_both_dialects(self, base, msb, lsb):
        text = f"{base}<{msb}:{lsb}>" if msb != lsb else f"{base}<{msb}>"
        for syntax in (VIEWDRAW_BUS_SYNTAX, COMPOSER_BUS_SYNTAX):
            assert syntax.format(syntax.parse(text)) == text

    @given(base=bases)
    @settings(max_examples=30)
    def test_postfix_roundtrip_in_viewdraw(self, base):
        text = base + "-"
        ref = VIEWDRAW_BUS_SYNTAX.parse(text)
        assert VIEWDRAW_BUS_SYNTAX.format(ref) == text


class TestMigrationConnectivityProperty:
    @given(
        pages=st.integers(1, 3),
        chains=st.integers(1, 3),
        stages=st.integers(2, 5),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_random_chain_migrations_always_verify(self, pages, chains, stages, seed):
        from cadinterop.schematic.migrate import Migrator
        from cadinterop.schematic.samples import (
            build_sample_plan,
            build_vl_libraries,
            generate_chain_schematic,
        )

        libraries = build_vl_libraries()
        cell = generate_chain_schematic(
            libraries, pages=pages, chains_per_page=chains, stages=stages, seed=seed
        )
        result = Migrator(build_sample_plan(source_libraries=libraries)).migrate(cell)
        assert result.verification.equivalent, result.verification.summary()
