"""Tests for platform transportability (paper Section 3.4)."""

import pytest

from cadinterop.common.diagnostics import IssueLog
from cadinterop.platform.accel import (
    ACCEL_BOX,
    EMU_BOX,
    Workstation,
    migration_cost,
)
from cadinterop.platform.hosts import (
    ALL_HOSTS,
    HPUX_LIKE,
    PC_LIKE,
    SOLARIS_LIKE,
    SUNOS4_LIKE,
    command_matrix,
    divergent_intents,
    portable_intents,
)
from cadinterop.platform.scripts import check_script, is_portable, translate_script
from cadinterop.platform.versions import ReleaseTracker


class TestHostProfiles:
    def test_matrix_covers_all_intents(self):
        matrix = command_matrix()
        assert set(matrix) == {
            "get-hostname", "get-hostid", "get-ethernet-id",
            "add-swap", "mount-remote", "list-processes",
        }

    def test_pc_lacks_unix_admin(self):
        assert not PC_LIKE.supports("add-swap")
        assert not PC_LIKE.supports("mount-remote")

    def test_hostid_differs_across_unix(self):
        """The paper's exact example: hostid commands differ per flavor."""
        commands = {h.name: h.command_for("get-hostid") for h in (SUNOS4_LIKE, HPUX_LIKE)}
        assert commands["sunos4-like"] != commands["hpux-like"]

    def test_nothing_is_universally_identical(self):
        assert portable_intents() == []

    def test_divergence_within_unix_only(self):
        unix = (SUNOS4_LIKE, SOLARIS_LIKE, HPUX_LIKE)
        divergent = divergent_intents(unix)
        assert "add-swap" in divergent
        assert "get-ethernet-id" in divergent


OFFICE_SCRIPT = """\
# nightly regression setup
hostname
hostid
mkfile 64m /swapfile && swapon /swapfile
mount -t nfs server:/vol /mnt
run_sims -all
"""


class TestScriptPortability:
    def test_same_platform_clean(self):
        assert check_script(OFFICE_SCRIPT, SUNOS4_LIKE, SUNOS4_LIKE) == []

    def test_unix_to_unix_findings(self):
        log = IssueLog()
        findings = check_script(OFFICE_SCRIPT, SUNOS4_LIKE, SOLARIS_LIKE, log)
        problems = {f.intent for f in findings}
        assert "add-swap" in problems and "mount-remote" in problems
        assert len(log) == len(findings)

    def test_office_to_home_pc_unportable(self):
        """Paper: office workstation vs home PC needs two sets of scripts."""
        findings = check_script(OFFICE_SCRIPT, SUNOS4_LIKE, PC_LIKE)
        missing = [f for f in findings if f.replacement is None]
        assert missing  # some commands simply have no PC equivalent
        assert not is_portable(OFFICE_SCRIPT, SUNOS4_LIKE, [PC_LIKE])

    def test_translation_produces_second_script(self):
        translated, untranslatable = translate_script(
            OFFICE_SCRIPT, SUNOS4_LIKE, SOLARIS_LIKE
        )
        assert "swap -a /swapfile" in translated
        assert "mount -F nfs" in translated
        assert untranslatable == []
        # The translated script is clean on the target.
        assert check_script(translated, SOLARIS_LIKE, SOLARIS_LIKE) == []

    def test_untranslatable_lines_commented(self):
        translated, untranslatable = translate_script(
            OFFICE_SCRIPT, SUNOS4_LIKE, PC_LIKE
        )
        assert untranslatable
        assert "# UNPORTABLE" in translated

    def test_unknown_commands_pass_through(self):
        findings = check_script("run_sims -all\n", SUNOS4_LIKE, PC_LIKE)
        assert findings == []


class TestVersionSkew:
    def build_tracker(self):
        tracker = ReleaseTracker(["sun", "hp", "pc"])
        tracker.record("simx", "1.5", "sun", day=0)
        tracker.record("simx", "1.5", "hp", day=10)
        tracker.record("simx", "1.5", "pc", day=40)
        tracker.record("simx", "1.6", "sun", day=100)
        tracker.record("simx", "1.6", "hp", day=121)
        return tracker

    def test_skew_during_propagation(self):
        tracker = self.build_tracker()
        skew = tracker.skew("simx", day=110)
        assert skew == {"sun": "1.6", "hp": "1.5", "pc": "1.5"}
        assert tracker.is_skewed("simx", day=110)

    def test_no_skew_before_release(self):
        tracker = self.build_tracker()
        assert tracker.skew("simx", day=50) == {"sun": "1.5", "hp": "1.5", "pc": "1.5"}
        assert not tracker.is_skewed("simx", day=50)

    def test_propagation_lag(self):
        tracker = self.build_tracker()
        lag = tracker.propagation_lag("simx", "1.5")
        assert lag == {"sun": 0, "hp": 10, "pc": 40}
        lag16 = tracker.propagation_lag("simx", "1.6")
        assert lag16["pc"] is None  # never arrived

    def test_track_record(self):
        """The number to check before purchasing."""
        tracker = self.build_tracker()
        record = tracker.track_record("simx")
        assert record["sun"] == 0.0
        assert record["hp"] == pytest.approx((10 + 21) / 2)
        assert record["pc"] == 40.0

    def test_unknown_platform_rejected(self):
        tracker = self.build_tracker()
        with pytest.raises(ValueError):
            tracker.record("simx", "2.0", "vax", day=0)


class TestAccelerators:
    def test_attach_requires_port_and_driver(self):
        host = Workstation("ws1", ports=frozenset({"scsi-2"}))
        ok, problems = host.can_attach(ACCEL_BOX)
        assert not ok and any("driver" in p for p in problems)
        host.install_driver("accelsd")
        host.attach(ACCEL_BOX)
        assert host.run_design("cpu") == "accelsim cpu -hw"

    def test_wrong_cabling_blocks(self):
        host = Workstation("ws1", ports=frozenset({"scsi-2"}))
        host.install_driver("emudrv")
        ok, problems = host.can_attach(EMU_BOX)
        assert not ok and any("port" in p for p in problems)
        with pytest.raises(RuntimeError):
            host.attach(EMU_BOX)

    def test_migration_cost_enumerates_differences(self):
        changes = migration_cost(EMU_BOX, ACCEL_BOX)
        text = " ".join(changes)
        assert "recable" in text
        assert "driver" in text
        assert "retrain" in text

    def test_no_accelerator_attached(self):
        host = Workstation("ws1", ports=frozenset())
        with pytest.raises(RuntimeError):
            host.run_design("cpu")
