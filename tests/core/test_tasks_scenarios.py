"""Tests for the task model, task graph, and scenario pruning."""

import pytest

from cadinterop.core.library import cell_based_methodology, standard_scenarios
from cadinterop.core.scenarios import (
    DrivingFunctions,
    Scenario,
    UserProfile,
    prune,
    prune_report,
)
from cadinterop.core.tasks import (
    InfoItem,
    MethodologyError,
    Task,
    TaskGraph,
    task,
)


def small_graph():
    graph = TaskGraph("small")
    graph.add_task(task("spec", "write spec", [], ["spec-doc"], phase="front"))
    graph.add_task(task("rtl", "write RTL", ["spec-doc"], ["rtl"], phase="front"))
    graph.add_task(task("sim", "simulate", ["rtl"], ["sim-results"], phase="front", kind="analysis"))
    graph.add_task(task("synth", "synthesize", ["rtl"], ["gates"], phase="back"))
    graph.add_task(task("fix", "fix RTL from sim", ["sim-results"], ["rtl"], phase="front"))
    graph.add_task(task("route", "route", ["gates"], ["layout"], phase="back"))
    graph.add_task(task("timing", "timing analysis", ["layout"], ["timing-report"], phase="timing", kind="analysis"))
    return graph


class TestTaskModel:
    def test_task_kind_validated(self):
        with pytest.raises(MethodologyError):
            task("t", "d", [], ["x"], kind="magic")

    def test_non_validation_needs_outputs(self):
        with pytest.raises(MethodologyError):
            task("t", "d", ["x"], [])

    def test_validation_may_be_sink(self):
        sink = task("check", "final check", ["x"], [], kind="validation")
        assert sink.outputs == frozenset()

    def test_info_item_name_rules(self):
        with pytest.raises(MethodologyError):
            InfoItem("two words")

    def test_duplicate_task_rejected(self):
        graph = small_graph()
        with pytest.raises(MethodologyError):
            graph.add_task(task("spec", "again", [], ["spec-doc"]))


class TestTaskGraph:
    def test_producers_consumers(self):
        graph = small_graph()
        assert {t.name for t in graph.producers_of("rtl")} == {"rtl", "fix"}
        assert {t.name for t in graph.consumers_of("rtl")} == {"sim", "synth"}

    def test_successors_predecessors(self):
        graph = small_graph()
        assert graph.successors("rtl") == {"sim", "synth"}
        assert graph.predecessors("synth") == {"rtl", "fix"}

    def test_edges_triples(self):
        graph = small_graph()
        assert ("rtl", "rtl", "synth") in graph.edges()
        assert ("fix", "rtl", "sim") in graph.edges()

    def test_external_inputs_and_final_outputs(self):
        graph = small_graph()
        assert graph.external_inputs() == set()
        assert "timing-report" in graph.final_outputs()

    def test_iteration_loop_detected_not_error(self):
        graph = small_graph()
        assert graph.has_iteration_loops()  # sim -> fix -> rtl -> sim
        assert graph.validate() == []

    def test_backward_closure(self):
        graph = small_graph()
        needed = graph.backward_closure(["gates"])
        assert "route" not in needed and "timing" not in needed
        assert {"spec", "rtl", "synth"} <= needed

    def test_subgraph(self):
        graph = small_graph()
        sub = graph.subgraph({"spec", "rtl"})
        assert len(sub) == 2
        assert "spec-doc" in sub.info_items

    def test_stats(self):
        stats = small_graph().stats()
        assert stats["tasks"] == 7
        assert stats["analysis"] == 2


class TestMethodologyLibrary:
    def test_approximately_200_tasks(self):
        """The paper's number: ~200 tasks, spec to tapeout."""
        graph = cell_based_methodology()
        assert len(graph) == 200

    def test_spans_spec_to_tapeout(self):
        graph = cell_based_methodology()
        assert "write-product-spec" in graph
        assert "ship-mask-data" in graph
        assert "tapeout-archive" in graph.final_outputs()

    def test_phases_present(self):
        graph = cell_based_methodology()
        phases = {t.phase for t in graph.tasks()}
        assert {"specification", "rtl", "verification", "synthesis",
                "floorplanning", "routing", "tapeout"} <= phases

    def test_connected_from_spec_to_mask(self):
        graph = cell_based_methodology()
        needed = graph.backward_closure(["final-mask-data"])
        assert "write-product-spec" in needed
        assert "synthesize-blockA" in needed
        assert "route-signal-nets" in needed

    def test_iteration_loops_present(self):
        """Task graphs 'more faithfully represent the designer's choices'
        — they are not linear."""
        assert cell_based_methodology().has_iteration_loops()

    def test_only_legacy_data_is_external(self):
        graph = cell_based_methodology()
        assert graph.external_inputs() == {"legacy-schematics", "legacy-models"}

    def test_kinds_mixed(self):
        stats = cell_based_methodology().stats()
        assert stats["analysis"] > 20
        assert stats["validation"] > 8

    def test_clean_validation(self):
        assert cell_based_methodology().validate() == []


class TestScenarios:
    def test_profile_validation(self):
        with pytest.raises(MethodologyError):
            UserProfile(0, "expert")
        with pytest.raises(MethodologyError):
            UserProfile(5, "wizard")

    def test_driving_weights_validated(self):
        with pytest.raises(MethodologyError):
            DrivingFunctions(cost=9)

    def test_prune_requires_outputs(self):
        with pytest.raises(MethodologyError):
            prune(small_graph(), Scenario(
                "s", UserProfile(1, "expert"), DrivingFunctions(),
            ))

    def test_prune_unknown_output(self):
        with pytest.raises(MethodologyError):
            prune(small_graph(), Scenario(
                "s", UserProfile(1, "expert"), DrivingFunctions(),
                required_outputs=("unobtainium",),
            ))

    def test_prune_backward_closure(self):
        scenario = Scenario(
            "gates-only", UserProfile(4, "expert"), DrivingFunctions(),
            required_outputs=("gates",),
        )
        pruned = prune(small_graph(), scenario)
        assert "route" not in pruned and "timing" not in pruned
        assert "synth" in pruned

    def test_excluded_phases(self):
        scenario = Scenario(
            "no-backend", UserProfile(4, "expert"), DrivingFunctions(),
            required_outputs=("layout",),
            excluded_phases=("timing",),
        )
        pruned = prune(small_graph(), scenario)
        assert "timing" not in pruned

    def test_performance_phases_gated_by_driving_functions(self):
        lowperf = Scenario(
            "cheap", UserProfile(4, "novice"),
            DrivingFunctions(performance=2),
            required_outputs=("timing-report",),
            performance_phases=("timing",),
        )
        fast = Scenario(
            "fast", UserProfile(4, "expert"),
            DrivingFunctions(performance=5),
            required_outputs=("timing-report",),
            performance_phases=("timing",),
        )
        assert "timing" not in prune(small_graph(), lowperf)
        assert "timing" in prune(small_graph(), fast)

    def test_standard_scenarios_prune_meaningfully(self):
        graph = cell_based_methodology()
        for scenario in standard_scenarios():
            pruned, report = prune_report(graph, scenario)
            assert 0 < len(pruned) < len(graph)
            assert report.task_reduction > 0
            assert report.interaction_reduction > 0

    def test_netlist_handoff_smallest(self):
        graph = cell_based_methodology()
        sizes = {
            s.name: len(prune(graph, s)) for s in standard_scenarios()
        }
        assert sizes["netlist-handoff"] < sizes["digital-only-lowcost"] < sizes["full-asic"]
