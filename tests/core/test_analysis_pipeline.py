"""Tests for tool models, mapping, flow diagrams, analysis, optimization."""

import pytest

from cadinterop.core.analysis import Finding, analyze
from cadinterop.core.checklist import analyze_environment, environment_checklist
from cadinterop.core.flows import build_flow_diagram
from cadinterop.core.library import (
    cell_based_methodology,
    standard_scenarios,
    standard_tool_catalog,
)
from cadinterop.core.mapping import compare_mappings, map_tasks_to_tools
from cadinterop.core.optimization import (
    apply_conventions,
    measure_lever,
    repartition_boundary,
    substitute_technology,
)
from cadinterop.core.scenarios import prune
from cadinterop.core.tasks import MethodologyError, TaskGraph, task
from cadinterop.core.toolmodel import (
    ControlInterface,
    DataPort,
    ToolCatalog,
    ToolModel,
)


def two_tool_setup():
    """A minimal graph + catalog with every classic problem planted."""
    graph = TaskGraph("mini")
    graph.add_task(task("author", "write model", [], ["model"]))
    graph.add_task(task("simulate", "simulate model", ["model"], ["results"], kind="analysis"))
    graph.add_task(task("view", "view results", ["results"], ["observations"], kind="analysis"))

    catalog = ToolCatalog()
    catalog.add(ToolModel(
        name="editor",
        function="authoring",
        data_ports=[DataPort("model", "out", "fmt-a", "sem-a", "hier", "names-a")],
        control=[ControlInterface("cli", "cli", "in")],
        implements_tasks={"author"},
    ))
    catalog.add(ToolModel(
        name="sim",
        function="simulation",
        data_ports=[
            DataPort("model", "in", "fmt-b", "sem-b", "flat", "names-b"),
            DataPort("results", "out", "fmt-r", "n/a", "flat", "names-b"),
        ],
        control=[ControlInterface("cli", "cli", "in")],
        implements_tasks={"simulate"},
    ))
    catalog.add(ToolModel(
        name="viewer",
        function="waveform viewing",
        data_ports=[DataPort("results", "in", "fmt-r", "n/a", "flat", "names-b")],
        control=[ControlInterface("win", "gui", "in")],
        implements_tasks={"view"},
    ))
    return graph, catalog


class TestToolModel:
    def test_port_direction_validated(self):
        with pytest.raises(MethodologyError):
            DataPort("x", "sideways", "f", "s", "st", "n")

    def test_control_kind_validated(self):
        with pytest.raises(MethodologyError):
            ControlInterface("c", "telepathy", "in")

    def test_port_lookup(self):
        _graph, catalog = two_tool_setup()
        sim = catalog.tool("sim")
        assert sim.port_for("model", "in").persistence == "fmt-b"
        assert sim.port_for("model", "out") is None

    def test_controllable_by(self):
        _graph, catalog = two_tool_setup()
        assert catalog.tool("sim").controllable_by(["cli"])
        assert not catalog.tool("viewer").controllable_by(["cli", "api"])

    def test_catalog_subset(self):
        _graph, catalog = two_tool_setup()
        subset = catalog.subset(["sim"])
        assert len(subset) == 1 and "editor" not in subset


class TestMapping:
    def test_holes_and_coverage(self):
        graph, catalog = two_tool_setup()
        graph.add_task(task("unmappable", "nobody does this", ["model"], ["exotic"]))
        mapping = map_tasks_to_tools(graph, catalog)
        assert mapping.holes == ["unmappable"]
        assert mapping.coverage_ratio() == pytest.approx(3 / 4)

    def test_overlaps(self):
        graph, catalog = two_tool_setup()
        catalog.add(ToolModel(
            name="sim2", function="another simulator",
            data_ports=[], control=[], implements_tasks={"simulate"},
        ))
        mapping = map_tasks_to_tools(graph, catalog)
        assert mapping.overlaps == {"simulate": ["sim", "sim2"]}

    def test_preference_resolves_overlap(self):
        graph, catalog = two_tool_setup()
        catalog.add(ToolModel(
            name="sim2", function="preferred simulator",
            data_ports=[], control=[], implements_tasks={"simulate"},
        ))
        mapping = map_tasks_to_tools(graph, catalog, prefer=["sim2"])
        assert mapping.chosen_tool("simulate") == "sim2"

    def test_compare_mappings(self):
        graph, catalog = two_tool_setup()
        catalog.add(ToolModel(
            name="sim2", function="x", data_ports=[], control=[],
            implements_tasks={"simulate"},
        ))
        a = map_tasks_to_tools(graph, catalog, "internal")
        b = map_tasks_to_tools(graph, catalog, "thirdparty", prefer=["sim2"])
        differences = compare_mappings(a, b)
        assert differences == {"simulate": ("sim", "sim2")}


class TestFlowDiagram:
    def test_edges_carry_both_ports(self):
        graph, catalog = two_tool_setup()
        mapping = map_tasks_to_tools(graph, catalog)
        diagram = build_flow_diagram(graph, mapping, catalog)
        edge = next(e for e in diagram.data_edges if e.info == "model")
        assert edge.producer_tool == "editor" and edge.consumer_tool == "sim"
        assert edge.producer_port.persistence == "fmt-a"
        assert edge.consumer_port.persistence == "fmt-b"

    def test_control_edges_pick_best_channel(self):
        graph, catalog = two_tool_setup()
        mapping = map_tasks_to_tools(graph, catalog)
        diagram = build_flow_diagram(graph, mapping, catalog)
        kinds = {e.tool: e.kind for e in diagram.control_edges}
        assert kinds["sim"] == "cli"
        assert kinds["viewer"] == "gui"

    def test_unmapped_tasks_listed(self):
        graph, catalog = two_tool_setup()
        graph.add_task(task("orphan", "x", ["model"], ["y"]))
        mapping = map_tasks_to_tools(graph, catalog)
        diagram = build_flow_diagram(graph, mapping, catalog)
        assert diagram.unmapped_tasks == ["orphan"]


class TestClassicProblems:
    def analysis(self):
        graph, catalog = two_tool_setup()
        mapping = map_tasks_to_tools(graph, catalog)
        diagram = build_flow_diagram(graph, mapping, catalog)
        return analyze(diagram)

    def test_all_five_detectable(self):
        report = self.analysis()
        counts = report.problem_counts()
        assert counts["performance"] == 1  # fmt-a -> fmt-b
        assert counts["name-mapping"] == 1  # names-a vs names-b
        assert counts["structure-mapping"] == 1  # hier vs flat
        assert counts["semantics"] == 1  # sem-a vs sem-b
        assert counts["tool-control"] == 1  # GUI-only viewer

    def test_matched_edge_is_clean(self):
        report = self.analysis()
        results_findings = [f for f in report.findings if f.info == "results"]
        assert results_findings == []  # sim -> viewer agrees on everything

    def test_conversion_cost_accumulates(self):
        report = self.analysis()
        assert report.conversion_cost == pytest.approx(1.0 + 2.0)

    def test_worst_pair(self):
        report = self.analysis()
        producer, consumer, count = report.worst_tool_pair()
        assert (producer, consumer) == ("editor", "sim") and count == 4


class TestOptimizationLevers:
    def test_repartition_clears_edge_problems(self):
        graph, catalog = two_tool_setup()
        improved = repartition_boundary(catalog, "editor", "sim", "model")
        delta = measure_lever(
            "repartition", "direct editor->sim link",
            graph, catalog, graph, improved,
        )
        assert delta.improved
        assert delta.findings_removed >= 4 - 1  # only the GUI finding remains

    def test_repartition_requires_modelled_ports(self):
        graph, catalog = two_tool_setup()
        with pytest.raises(MethodologyError):
            repartition_boundary(catalog, "editor", "viewer", "model")

    def test_conventions_clear_namespace_problems(self):
        graph, catalog = two_tool_setup()
        improved = apply_conventions(catalog, namespace="project-names")
        delta = measure_lever(
            "conventions", "project naming convention",
            graph, catalog, graph, improved,
        )
        assert delta.findings_removed == 1  # exactly the name-mapping finding

    def test_technology_substitution_shrinks_graph(self):
        graph, _catalog = two_tool_setup()
        replacement = task(
            "formal-check", "formal verification replaces simulate+view",
            ["model"], ["results", "observations"], kind="validation",
        )
        new_graph = substitute_technology(graph, ["simulate", "view"], replacement)
        assert len(new_graph) == 2
        assert "formal-check" in new_graph

    def test_substitution_must_cover_outputs(self):
        graph, _catalog = two_tool_setup()
        graph.add_task(task("report", "use observations", ["observations"], ["summary"]))
        bad = task("formal-check", "incomplete", ["model"], ["results"])
        with pytest.raises(MethodologyError):
            substitute_technology(graph, ["simulate", "view"], bad)


class TestEnvironmentPipeline:
    def test_full_asic_detects_all_problem_classes(self):
        graph = cell_based_methodology()
        catalog = standard_tool_catalog()
        analysis = analyze_environment(graph, catalog, standard_scenarios()[0])
        counts = analysis.report.problem_counts()
        for problem in Finding.PROBLEMS:
            assert counts[problem] > 0, f"expected at least one {problem} finding"

    def test_holes_reported(self):
        graph = cell_based_methodology()
        catalog = standard_tool_catalog()
        analysis = analyze_environment(graph, catalog, standard_scenarios()[0])
        assert analysis.mapping.holes  # the modelled environment is incomplete

    def test_checklist_rendering(self):
        graph = cell_based_methodology()
        catalog = standard_tool_catalog()
        analysis = analyze_environment(graph, catalog, standard_scenarios()[1])
        checklist = environment_checklist(analysis)
        assert "checklist" in checklist
        assert "[ ]" in checklist
        assert "action:" in checklist

    def test_summary_mentions_scenario(self):
        graph = cell_based_methodology()
        catalog = standard_tool_catalog()
        analysis = analyze_environment(graph, catalog, standard_scenarios()[2])
        assert "digital-only-lowcost" in analysis.summary()


class TestDotRendering:
    def test_dot_output_shape(self):
        from cadinterop.core.flows import to_dot

        graph, catalog = two_tool_setup()
        mapping = map_tasks_to_tools(graph, catalog)
        diagram = build_flow_diagram(graph, mapping, catalog)
        report = analyze(diagram)
        problems = {}
        for finding in report.findings:
            key = (finding.producer_tool, finding.consumer_tool)
            problems[key] = problems.get(key, 0) + 1
        dot = to_dot(diagram, problems)
        assert dot.startswith("digraph")
        assert '"editor" -> "sim"' in dot
        assert "color=red" in dot  # the troubled edge is highlighted
        assert '"sim" -> "viewer"' in dot
        assert dot.count('label="model') == 1  # deduplicated

    def test_dot_without_problems(self):
        from cadinterop.core.flows import to_dot

        graph, catalog = two_tool_setup()
        mapping = map_tasks_to_tools(graph, catalog)
        diagram = build_flow_diagram(graph, mapping, catalog)
        dot = to_dot(diagram)
        assert "color=red" not in dot


class TestOverlapsInModeledEnvironment:
    def test_overlaps_exist(self):
        """Paper: the task/tool map 'is the first point where holes and
        overlaps of functionality are identified' — both must appear."""
        graph = cell_based_methodology()
        catalog = standard_tool_catalog()
        analysis = analyze_environment(graph, catalog, standard_scenarios()[0])
        assert analysis.mapping.holes
        assert analysis.mapping.overlaps
        # The competing simulators overlap on top-level simulation.
        assert set(analysis.mapping.overlaps["run-top-sims"]) == {
            "turbo-like-sim", "xl-like-sim",
        }

    def test_overlap_resolution_by_mandate(self):
        """A scenario's mandated tools win overlaps deterministically."""
        from cadinterop.core.mapping import map_tasks_to_tools
        from cadinterop.core.scenarios import prune

        graph = cell_based_methodology()
        catalog = standard_tool_catalog()
        scenario = standard_scenarios()[0]
        pruned = prune(graph, scenario)
        default = map_tasks_to_tools(pruned, catalog, "default")
        mandated = map_tasks_to_tools(
            pruned, catalog, "mandated", prefer=["turbo-like-sim", "toolQ-like"]
        )
        assert default.chosen_tool("run-top-sims") == "turbo-like-sim"  # alphabetical
        assert mandated.chosen_tool("run-global-placement") == "toolQ-like"
        assert compare_mappings(default, mandated)
