"""Result cache correctness: hits equal cold runs, edits invalidate,
corruption is a miss — never an error."""

import pickle

import pytest

from cadinterop.common.geometry import Point
from cadinterop.farm import MigrationFarm, ResultCache, cache_key
from cadinterop.schematic import io_cd
from cadinterop.schematic.migrate import PIPELINE_VERSION
from cadinterop.schematic.model import TextLabel, Wire
from cadinterop.schematic.samples import (
    build_sample_plan,
    build_sample_schematic,
    build_vl_libraries,
)


@pytest.fixture(scope="module")
def vl_libs():
    return build_vl_libraries()


@pytest.fixture()
def plan(vl_libs):
    return build_sample_plan(source_libraries=vl_libs)


@pytest.fixture()
def sample(vl_libs):
    return build_sample_schematic(vl_libs)


def run_once(plan, designs, cache):
    return MigrationFarm(plan, jobs=1, cache=cache).run(designs)


class TestWarmHitEqualsColdRun:
    def test_cached_result_equals_fresh_result(self, tmp_path, plan, sample):
        cold = run_once(plan, [sample], ResultCache(tmp_path))
        assert cold.migrated == 1 and cold.cached == 0

        # New cache instance over the same directory: persistence, not memory.
        warm = run_once(plan, [sample], ResultCache(tmp_path))
        assert warm.migrated == 0 and warm.cached == 1
        assert warm.cache_hits == 1 and warm.cache_misses == 0

        fresh, cached = cold.items[0].result, warm.items[0].result
        assert cached.clean == fresh.clean
        assert cached.bus_renames == fresh.bus_renames
        assert cached.replacements.replacements == fresh.replacements.replacements
        assert cached.verification.equivalent == fresh.verification.equivalent
        assert io_cd.dump_schematic(cached.schematic) == io_cd.dump_schematic(
            fresh.schematic
        )

    def test_hit_and_miss_counters_populated(self, tmp_path, plan, sample):
        cache = ResultCache(tmp_path)
        report = run_once(plan, [sample], cache)
        assert report.cache_misses == 1 and report.cache_hits == 0
        report = run_once(plan, [sample], cache)
        assert report.cache_hits == 1


class TestInvalidation:
    def test_editing_a_wire_invalidates(self, tmp_path, plan, sample):
        run_once(plan, [sample], ResultCache(tmp_path))
        sample.pages[0].add_wire(Wire([Point(448, 192), Point(448, 224)]))
        report = run_once(plan, [sample], ResultCache(tmp_path))
        assert report.migrated == 1 and report.cached == 0

    def test_renaming_a_net_invalidates(self, tmp_path, plan, sample):
        run_once(plan, [sample], ResultCache(tmp_path))
        sample.pages[0].wires[3].label = "N1X"
        report = run_once(plan, [sample], ResultCache(tmp_path))
        assert report.migrated == 1 and report.cached == 0

    def test_cosmetic_label_invalidates(self, tmp_path, plan, sample):
        run_once(plan, [sample], ResultCache(tmp_path))
        sample.pages[1].add_label(TextLabel("rev B", Point(8, 8)))
        report = run_once(plan, [sample], ResultCache(tmp_path))
        assert report.migrated == 1 and report.cached == 0

    def test_replacement_strategy_change_invalidates(self, tmp_path, plan, sample):
        run_once(plan, [sample], ResultCache(tmp_path))
        plan.replacement_strategy = "naive"
        report = run_once(plan, [sample], ResultCache(tmp_path))
        assert report.migrated == 1 and report.cached == 0

    def test_verify_flag_change_invalidates(self, tmp_path, plan, sample):
        run_once(plan, [sample], ResultCache(tmp_path))
        plan.verify = False
        report = run_once(plan, [sample], ResultCache(tmp_path))
        assert report.migrated == 1 and report.cached == 0

    def test_pipeline_version_participates(self, tmp_path, plan, sample):
        run_once(plan, [sample], ResultCache(tmp_path))
        bumped = ResultCache(tmp_path, pipeline_version=PIPELINE_VERSION + "-next")
        report = run_once(plan, [sample], bumped)
        assert report.migrated == 1 and report.cached == 0

    def test_unrelated_design_untouched_entries_survive(self, tmp_path, plan, vl_libs):
        first = build_sample_schematic(vl_libs)
        second = build_sample_schematic(vl_libs)
        second.name = "mixed2"
        run_once(plan, [first, second], ResultCache(tmp_path))
        second.pages[0].add_label(TextLabel("touched", Point(8, 8)))
        report = run_once(plan, [first, second], ResultCache(tmp_path))
        assert report.cached == 1 and report.migrated == 1
        migrated = [item.design for item in report.items if item.status == "migrated"]
        assert migrated == ["mixed2"]


class TestCorruption:
    def entries(self, tmp_path):
        return sorted(tmp_path.glob("*.migr.pkl"))

    def test_truncated_entry_is_a_miss(self, tmp_path, plan, sample):
        run_once(plan, [sample], ResultCache(tmp_path))
        (entry,) = self.entries(tmp_path)
        entry.write_bytes(entry.read_bytes()[:16])
        cache = ResultCache(tmp_path)
        report = run_once(plan, [sample], cache)
        assert report.migrated == 1 and report.cached == 0
        assert cache.corrupt == 1

    def test_garbage_bytes_are_a_miss(self, tmp_path, plan, sample):
        run_once(plan, [sample], ResultCache(tmp_path))
        (entry,) = self.entries(tmp_path)
        entry.write_bytes(b"this is not a pickle")
        report = run_once(plan, [sample], ResultCache(tmp_path))
        assert report.migrated == 1 and report.cached == 0
        # The corrupted entry was replaced with a good one.
        report = run_once(plan, [sample], ResultCache(tmp_path))
        assert report.cached == 1

    def test_wrong_payload_type_is_a_miss(self, tmp_path, plan, sample):
        run_once(plan, [sample], ResultCache(tmp_path))
        (entry,) = self.entries(tmp_path)
        entry.write_bytes(pickle.dumps({"format": 1, "key": "bogus", "result": 42}))
        report = run_once(plan, [sample], ResultCache(tmp_path))
        assert report.migrated == 1 and report.cached == 0

    def test_corrupt_entry_never_raises(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key("d" * 64, "p" * 64)
        (tmp_path / f"{key}.migr.pkl").write_bytes(b"\x80garbage")
        assert cache.get(key) is None
        assert cache.misses == 1 and cache.corrupt == 1


class TestMemoryOnlyCache:
    def test_memory_cache_round_trip(self, plan, sample):
        cache = ResultCache(None)
        report = run_once(plan, [sample], cache)
        assert report.migrated == 1
        report = run_once(plan, [sample], cache)
        assert report.cached == 1
