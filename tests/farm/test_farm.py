"""Farm orchestration: executors, failure isolation, report accounting."""

import pytest

from cadinterop.farm import (
    MigrationFarm,
    PIPELINE_STAGES,
    ResultCache,
    migrate_corpus,
)
from cadinterop.schematic.samples import (
    build_sample_plan,
    build_vl_libraries,
    generate_chain_schematic,
)
from cadinterop.schematic.verify import NetlistCache


@pytest.fixture(scope="module")
def vl_libs():
    return build_vl_libraries()


@pytest.fixture()
def plan(vl_libs):
    return build_sample_plan(source_libraries=vl_libs)


def build_corpus(vl_libs, count=4):
    shapes = [(1, 2, 3), (2, 2, 4), (1, 3, 4), (2, 3, 3)]
    corpus = []
    for index in range(count):
        pages, chains, stages = shapes[index % len(shapes)]
        cell = generate_chain_schematic(
            vl_libs, pages=pages, chains_per_page=chains, stages=stages, seed=index
        )
        cell.name = f"unit{index:02d}"
        corpus.append(cell)
    return corpus


class TestFarmRun:
    def test_inline_run_migrates_everything(self, vl_libs, plan):
        corpus = build_corpus(vl_libs)
        report = MigrationFarm(plan).run(corpus)
        assert report.total == len(corpus)
        assert report.migrated == len(corpus)
        assert report.cached == report.failed == 0
        assert report.all_clean
        assert [item.design for item in report.items] == [c.name for c in corpus]
        assert all(item.result is not None for item in report.items)
        assert all(len(item.digest) == 64 for item in report.items)
        assert report.wall_seconds > 0

    def test_stage_profile_is_populated(self, vl_libs, plan, tmp_path):
        corpus = build_corpus(vl_libs)
        report = MigrationFarm(plan, cache=ResultCache(tmp_path)).run(corpus)
        # Acceptance: stage timings and hit/miss counters are non-empty.
        assert report.profile.stages
        for stage in PIPELINE_STAGES:
            stats = report.profile.stages[stage]
            assert stats.calls == len(corpus)
            assert stats.seconds > 0
        for bookkeeping in ("farm:digest", "farm:cache-lookup", "farm:cache-store"):
            assert report.profile.stages[bookkeeping].calls == len(corpus)
        assert report.cache_misses == len(corpus)

    def test_executors_agree(self, vl_libs, plan):
        corpus = build_corpus(vl_libs, count=3)
        by_executor = {
            executor: MigrationFarm(plan, jobs=2, executor=executor).run(corpus)
            for executor in ("inline", "thread", "process")
        }
        reference = by_executor["inline"]
        for executor, report in by_executor.items():
            assert report.migrated == len(corpus), executor
            assert report.all_clean, executor
            for ref_item, item in zip(reference.items, report.items):
                assert item.digest == ref_item.digest
                assert item.result.bus_renames == ref_item.result.bus_renames
                assert (
                    item.result.replacements.replacements
                    == ref_item.result.replacements.replacements
                )

    def test_traced_run_merges_worker_spans(self, vl_libs, plan):
        from cadinterop.obs import disable_tracing, enable_tracing

        corpus = build_corpus(vl_libs, count=3)
        for executor in ("thread", "process"):
            tracer = enable_tracing()
            try:
                report = MigrationFarm(plan, jobs=2, executor=executor).run(corpus)
                spans = tracer.spans()
            finally:
                disable_tracing()
            assert report.trace_id == tracer.trace_id
            roots = [s for s in spans if s["parent_id"] is None]
            assert [s["name"] for s in roots] == ["farm:run"], executor
            migrates = [s for s in spans if s["name"] == "migrate"]
            assert len(migrates) == len(corpus), executor
            assert all(
                s["parent_id"] == roots[0]["span_id"] for s in migrates
            ), executor

    def test_keep_results_false_drops_payloads(self, vl_libs, plan):
        corpus = build_corpus(vl_libs, count=2)
        report = MigrationFarm(plan).run(corpus, keep_results=False)
        assert report.migrated == 2 and report.all_clean
        assert all(item.result is None for item in report.items)

    def test_result_for(self, vl_libs, plan):
        corpus = build_corpus(vl_libs, count=2)
        report = MigrationFarm(plan).run(corpus)
        assert report.result_for("unit01") is report.items[1].result
        assert report.result_for("nope") is None

    def test_migrate_corpus_convenience(self, vl_libs, plan, tmp_path):
        corpus = build_corpus(vl_libs, count=2)
        report = migrate_corpus(plan, corpus, jobs=1, cache=ResultCache(tmp_path))
        assert report.migrated == 2
        report = migrate_corpus(plan, corpus, jobs=1, cache=ResultCache(tmp_path))
        assert report.cached == 2

    def test_cache_accepts_plain_path(self, vl_libs, plan, tmp_path):
        corpus = build_corpus(vl_libs, count=1)
        MigrationFarm(plan, cache=tmp_path).run(corpus)
        report = MigrationFarm(plan, cache=str(tmp_path)).run(corpus)
        assert report.cached == 1


class TestFailureIsolation:
    def broken_corpus(self, vl_libs):
        corpus = build_corpus(vl_libs, count=3)
        corpus[1].pages[0].wires[0].label = "N<1:0"  # unterminated subscript
        return corpus

    def test_one_bad_design_does_not_abort_the_corpus(self, vl_libs, plan):
        report = MigrationFarm(plan).run(self.broken_corpus(vl_libs))
        assert report.failed == 1 and report.migrated == 2
        assert not report.all_clean
        bad = report.items[1]
        assert bad.status == "failed"
        assert "BusSyntaxError" in bad.error
        assert bad.result is None
        assert [item.status for item in report.items] == [
            "migrated", "failed", "migrated",
        ]

    def test_failure_survives_process_pool(self, vl_libs, plan):
        report = MigrationFarm(plan, jobs=2, executor="process").run(
            self.broken_corpus(vl_libs)
        )
        assert report.failed == 1 and report.migrated == 2
        assert "BusSyntaxError" in report.items[1].error

    def test_failed_design_is_not_cached(self, vl_libs, plan, tmp_path):
        corpus = self.broken_corpus(vl_libs)
        cache = ResultCache(tmp_path)
        MigrationFarm(plan, cache=cache).run(corpus)
        assert len(cache) == 2  # only the successes were stored
        report = MigrationFarm(plan, cache=ResultCache(tmp_path)).run(corpus)
        assert report.cached == 2 and report.failed == 1


class TestFarmValidation:
    def test_jobs_must_be_positive(self, plan):
        with pytest.raises(ValueError, match="jobs"):
            MigrationFarm(plan, jobs=0)

    def test_unknown_executor_rejected(self, plan):
        with pytest.raises(ValueError, match="executor"):
            MigrationFarm(plan, executor="fleet")


class TestReportRendering:
    def test_summary_and_render(self, vl_libs, plan, tmp_path):
        corpus = build_corpus(vl_libs, count=2)
        report = MigrationFarm(plan, cache=ResultCache(tmp_path)).run(corpus)
        summary = report.summary()
        assert "2 migrated" in summary and "2/2 clean" in summary
        rendered = report.render(per_design=True)
        assert "unit00" in rendered and "unit01" in rendered
        assert "verification" in rendered  # the stage table rides along


class TestFarmLineage:
    def lossy_corpus(self, vl_libs, count=3):
        corpus = []
        for index in range(count):
            cell = generate_chain_schematic(
                vl_libs, pages=1, chains_per_page=2, stages=3, seed=index,
                offgrid_labels=index % 2,  # units 01 (and 03, ...) are lossy
            )
            cell.name = f"unit{index:02d}"
            corpus.append(cell)
        return corpus

    def run_with_lineage(self, plan, corpus, **kwargs):
        from cadinterop.obs import (
            disable_lineage,
            disable_tracing,
            enable_lineage,
            enable_tracing,
        )

        tracer = enable_tracing()
        recorder = enable_lineage()
        try:
            report = MigrationFarm(plan, **kwargs).run(corpus)
            return report, recorder.records(), tracer.spans()
        finally:
            disable_lineage()
            disable_tracing()

    def test_loss_report_rides_on_the_farm_report(self, vl_libs, plan):
        corpus = self.lossy_corpus(vl_libs)
        report, records, _spans = self.run_with_lineage(plan, corpus)
        assert report.loss is not None
        assert report.loss.total == len(records)
        assert report.loss.by_verb["approximated"] == 1  # unit01's nudged label
        assert report.loss.top_lossy_designs() == [("unit01", 1)]
        assert report.loss.summary() in report.render()

    def test_untraced_run_has_no_loss_report(self, vl_libs, plan):
        report = MigrationFarm(plan).run(self.lossy_corpus(vl_libs))
        assert report.loss is None

    def test_worker_lineage_merges_and_links(self, vl_libs, plan):
        corpus = self.lossy_corpus(vl_libs)
        reference, ref_records, _ = self.run_with_lineage(plan, corpus, jobs=1)
        for executor in ("thread", "process"):
            report, records, spans = self.run_with_lineage(
                plan, corpus, jobs=2, executor=executor
            )
            key = lambda r: (r["design"], r["stage"], r["verb"], r["object_id"])
            assert sorted(map(key, records)) == sorted(map(key, ref_records)), executor
            assert report.loss.as_dict() == reference.loss.as_dict(), executor
            # Worker records must link to spans adopted into this trace.
            span_ids = {span["span_id"] for span in spans}
            assert all(r["span_id"] in span_ids for r in records), executor

    def test_cache_hit_is_recorded_as_preserved(self, vl_libs, plan, tmp_path):
        corpus = self.lossy_corpus(vl_libs, count=2)
        cache = ResultCache(tmp_path)
        self.run_with_lineage(plan, corpus, cache=cache)
        report, records, _spans = self.run_with_lineage(plan, corpus, cache=cache)
        assert report.cached == 2
        hits = [r for r in records if r["stage"] == "farm:cache"]
        assert len(hits) == 2
        assert all(r["verb"] == "preserved" for r in hits)
        assert {r["object_id"] for r in hits} == {"unit00", "unit01"}
        # Cached designs never re-entered the pipeline, so no migration
        # records (and no losses) this time around.
        assert report.loss.total == 2 and report.loss.losses == 0


class TestNetlistCache:
    def test_source_extraction_is_reused(self, vl_libs, plan):
        from cadinterop.schematic.migrate import Migrator

        corpus = build_corpus(vl_libs, count=1)
        cache = NetlistCache()
        migrator = Migrator(plan, netlist_cache=cache)
        migrator.migrate(corpus[0])
        assert cache.misses == 1 and cache.hits == 0
        migrator.migrate(corpus[0])
        assert cache.hits == 1
