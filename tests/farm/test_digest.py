"""Deterministic content digests for schematics and migration plans."""

import pytest

from cadinterop.common.geometry import Point, Transform
from cadinterop.schematic.globals_ import GlobalMap
from cadinterop.schematic.migrate import (
    Migrator,
    plan_digest,
    schematic_digest,
)
from cadinterop.schematic.model import TextLabel, Wire
from cadinterop.schematic.propertymap import AddRule
from cadinterop.schematic.samples import (
    build_sample_plan,
    build_sample_schematic,
    build_vl_libraries,
)


@pytest.fixture(scope="module")
def vl_libs():
    return build_vl_libraries()


@pytest.fixture()
def sample(vl_libs):
    return build_sample_schematic(vl_libs)


@pytest.fixture()
def plan(vl_libs):
    return build_sample_plan(source_libraries=vl_libs)


class TestSchematicDigest:
    def test_deterministic_across_independent_builds(self, sample):
        other = build_sample_schematic(build_vl_libraries())
        assert schematic_digest(sample) == schematic_digest(other)

    def test_hex_sha256_shape(self, sample):
        digest = schematic_digest(sample)
        assert len(digest) == 64
        int(digest, 16)  # parses as hex

    def test_editing_a_wire_changes_digest(self, sample):
        before = schematic_digest(sample)
        sample.pages[0].add_wire(Wire([Point(0, 0), Point(32, 0)]))
        assert schematic_digest(sample) != before

    def test_moving_a_wire_point_changes_digest(self, sample):
        before = schematic_digest(sample)
        wire = sample.pages[0].wires[0]
        wire.points[0] = Point(wire.points[0].x - 16, wire.points[0].y)
        assert schematic_digest(sample) != before

    def test_renaming_a_net_changes_digest(self, sample):
        before = schematic_digest(sample)
        sample.pages[0].wires[3].label = "N1_renamed"
        assert schematic_digest(sample) != before

    def test_property_edit_changes_digest(self, sample):
        before = schematic_digest(sample)
        sample.pages[0].instance("R1").properties.set("rval", "22k")
        assert schematic_digest(sample) != before

    def test_cosmetic_label_changes_digest(self, sample):
        before = schematic_digest(sample)
        sample.pages[0].add_label(TextLabel("rev B", Point(8, 8)))
        assert schematic_digest(sample) != before

    def test_rename_cell_changes_digest(self, sample):
        before = schematic_digest(sample)
        sample.name = "mixed1_copy"
        assert schematic_digest(sample) != before

    def test_instance_move_changes_digest(self, sample):
        before = schematic_digest(sample)
        instance = sample.pages[0].instance("U1")
        instance.transform = Transform(Point(176, 160))
        assert schematic_digest(sample) != before


class TestPlanDigest:
    def test_deterministic_across_independent_builds(self, plan):
        other = build_sample_plan(source_libraries=build_vl_libraries())
        assert plan_digest(plan) == plan_digest(other)

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda plan: setattr(plan, "replacement_strategy", "naive"),
            lambda plan: setattr(plan, "verify", False),
            lambda plan: plan.property_rules.add_rule(AddRule("touched", "yes")),
            lambda plan: setattr(plan, "global_map", GlobalMap()),
            lambda plan: plan.symbol_map._by_source.clear(),
        ],
        ids=["replacement_strategy", "verify", "property_rule", "global_map", "symbol_map"],
    )
    def test_every_plan_field_participates(self, plan, mutate):
        before = plan_digest(plan)
        mutate(plan)
        assert plan_digest(plan) != before

    def test_stable_across_migrations(self, vl_libs, plan, sample):
        """migrate() folds global rules into the symbol map in place; the
        digest must hash the effective plan so runs before/after agree."""
        before = plan_digest(plan)
        Migrator(plan).migrate(sample)
        assert plan_digest(plan) == before
        Migrator(plan).migrate(sample)
        assert plan_digest(plan) == before
