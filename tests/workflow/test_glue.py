"""Tests for integration-language standardization (paper Section 3.5)."""

import pytest

from cadinterop.common.diagnostics import IssueLog
from cadinterop.workflow.glue import (
    GlueInventory,
    GlueScript,
    LanguagePolicy,
    detect_language,
    standardization_report,
)


class TestDetection:
    def test_shebangs(self):
        assert detect_language("x", "#!/usr/bin/tclsh\nputs hi\n") == "tcl"
        assert detect_language("x", "#!/usr/bin/perl -w\nprint;\n") == "perl"
        assert detect_language("x", "#!/bin/sh\nls\n") == "shell"
        assert detect_language("x", "#!/bin/csh -f\nls\n") == "shell"
        assert detect_language("x", "#!/usr/bin/env perl\nprint;\n") == "perl"

    def test_extensions(self):
        assert detect_language("flow.tcl") == "tcl"
        assert detect_language("netlist.il") == "skill"
        assert detect_language("run.sh") == "shell"
        assert detect_language("gen.pl") == "perl"

    def test_shebang_wins_over_extension(self):
        assert detect_language("script.sh", "#!/usr/bin/tclsh\n") == "tcl"

    def test_skill_comment_heuristic(self):
        assert detect_language("x", "; SKILL procedure\n(procedure foo ())") == "skill"

    def test_unknown(self):
        assert detect_language("README", "hello") is None


def build_inventory():
    inventory = GlueInventory()
    # The frontend group writes perl and shell; backend writes skill; CAD
    # team writes tcl.
    inventory.add(GlueScript("run_regress.pl", "frontend", "perl"))
    inventory.add(GlueScript("nightly.sh", "frontend", "shell"))
    inventory.add(GlueScript("stream_out.il", "backend", "skill"))
    inventory.add(GlueScript("fill_notch.il", "backend", "skill"))
    inventory.add(GlueScript("flow.tcl", "cad", "tcl"))
    inventory.add(GlueScript("qa.tcl", "cad", "tcl"))
    return inventory


class TestInventory:
    def test_add_source_detects(self):
        inventory = GlueInventory()
        script = inventory.add_source("x.tcl", "cad", "# tcl glue\n")
        assert script.language == "tcl"

    def test_add_source_undetectable_raises(self):
        with pytest.raises(ValueError):
            GlueInventory().add_source("notes.txt", "cad", "hello")

    def test_unknown_language_rejected(self):
        with pytest.raises(ValueError):
            GlueScript("x", "g", "cobol")

    def test_group_languages(self):
        inventory = build_inventory()
        assert inventory.languages_of("frontend") == {"perl", "shell"}
        assert inventory.languages_of("backend") == {"skill"}


class TestStandardizationReport:
    def test_fragmentation_measured(self):
        report = standardization_report(build_inventory())
        assert report.language_counts == {
            "perl": 1, "shell": 1, "skill": 2, "tcl": 2,
        }
        assert report.groups == 3
        assert 0.0 < report.fragmentation < 1.0

    def test_foreclosed_reuse(self):
        """Scripts other groups cannot pick up — the paper's 'sharing and
        reuse ... will be limited'."""
        report = standardization_report(build_inventory())
        # backend (skill-only) cannot reuse perl/shell/tcl scripts: 4 of them.
        assert report.foreclosed_reuse["backend"] == 4
        assert report.total_foreclosed > 0

    def test_standardized_company_scores_zero(self):
        inventory = GlueInventory()
        for index in range(5):
            inventory.add(GlueScript(f"s{index}.tcl", "cad", "tcl"))
        report = standardization_report(inventory)
        assert report.fragmentation == 0.0
        assert report.total_foreclosed == 0

    def test_empty_inventory(self):
        report = standardization_report(GlueInventory())
        assert report.dominant_language is None
        assert report.fragmentation == 0.0


class TestPolicy:
    def test_enforcement(self):
        inventory = build_inventory()
        policy = LanguagePolicy("tcl", grandfathered=("skill",))
        log = IssueLog()
        offenders = policy.violations(inventory, log)
        assert {s.name for s in offenders} == {"run_regress.pl", "nightly.sh"}
        assert len(log) == 2

    def test_clean_policy(self):
        inventory = build_inventory()
        policy = LanguagePolicy("tcl", grandfathered=("skill", "perl", "shell"))
        assert policy.violations(inventory) == []

    def test_bad_standard(self):
        with pytest.raises(ValueError):
            LanguagePolicy("fortran")
