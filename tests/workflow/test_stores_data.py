"""Tests for data management stores and data-maturity checks."""

import os
import time

import pytest

from cadinterop.workflow.data import (
    ContentContains,
    DataVariable,
    FileExists,
    NewerThan,
    snapshot_file,
)
from cadinterop.workflow.stores import (
    FileStore,
    MakeLikeChecker,
    StoreError,
    VersionedStore,
)


class TestFileStore:
    def test_put_get(self, tmp_path):
        store = FileStore(tmp_path / "data")
        store.put("rtl/top.v", "module top; endmodule")
        assert store.get("rtl/top.v").startswith("module")
        assert store.exists("rtl/top.v")
        assert not store.exists("ghost")

    def test_get_missing(self, tmp_path):
        with pytest.raises(StoreError):
            FileStore(tmp_path).get("nope")


class TestVersionedStore:
    def test_revisions_accumulate(self):
        store = VersionedStore()
        r1 = store.check_in("top.v", "v1", author="ann")
        r2 = store.check_in("top.v", "v2", author="ann", comment="fix reset")
        assert (r1.number, r2.number) == (1, 2)
        assert store.get("top.v") == "v2"
        assert store.revision("top.v", 1).content == "v1"
        assert [r.comment for r in store.history("top.v")] == ["", "fix reset"]

    def test_lock_discipline(self):
        store = VersionedStore()
        store.check_in("top.v", "v1", author="ann")
        store.check_out("top.v", author="ann", lock=True)
        with pytest.raises(StoreError):
            store.check_out("top.v", author="bob", lock=True)
        # Check-in by the lock holder releases the lock.
        store.check_in("top.v", "v2", author="ann")
        store.check_out("top.v", author="bob", lock=True)
        with pytest.raises(StoreError):
            store.unlock("top.v", "ann")
        store.unlock("top.v", "bob")

    def test_checkin_while_locked_by_other(self):
        store = VersionedStore()
        store.check_in("x", "v1", author="ann")
        store.check_out("x", author="ann", lock=True)
        with pytest.raises(StoreError):
            store.check_in("x", "v2", author="bob")

    def test_shared_protocol(self):
        store = VersionedStore()
        store.put("a", "1")
        assert store.exists("a") and store.get("a") == "1"
        with pytest.raises(StoreError):
            store.get("b")
        with pytest.raises(StoreError):
            store.revision("a", 9)


class TestMakeLike:
    def build(self, tmp_path):
        store = FileStore(tmp_path)
        checker = MakeLikeChecker(store)
        store.put("top.v", "rtl")
        store.put("top.gates", "netlist")
        checker.add_rule("top.gates", ["top.v"])
        return store, checker

    def test_up_to_date(self, tmp_path):
        store, checker = self.build(tmp_path)
        os.utime(store.path_of("top.v"), (1000, 1000))
        os.utime(store.path_of("top.gates"), (2000, 2000))
        stale, reason = checker.out_of_date("top.gates")
        assert not stale and "up to date" in reason

    def test_stale_when_source_newer(self, tmp_path):
        store, checker = self.build(tmp_path)
        os.utime(store.path_of("top.v"), (3000, 3000))
        os.utime(store.path_of("top.gates"), (2000, 2000))
        stale, reason = checker.out_of_date("top.gates")
        assert stale and "newer" in reason

    def test_missing_target_is_stale(self, tmp_path):
        store = FileStore(tmp_path)
        checker = MakeLikeChecker(store)
        checker.add_rule("out", [])
        stale, _reason = checker.out_of_date("out")
        assert stale

    def test_transitive_staleness(self, tmp_path):
        store, checker = self.build(tmp_path)
        store.put("top.gds", "layout")
        checker.add_rule("top.gds", ["top.gates"])
        os.utime(store.path_of("top.v"), (5000, 5000))
        os.utime(store.path_of("top.gates"), (2000, 2000))
        os.utime(store.path_of("top.gds"), (6000, 6000))
        stale, reason = checker.out_of_date("top.gds")
        assert stale  # because top.gates is stale

    def test_duplicate_rule(self, tmp_path):
        _store, checker = self.build(tmp_path)
        with pytest.raises(StoreError):
            checker.add_rule("top.gates", [])


class TestSnapshots:
    def test_snapshot_missing(self, tmp_path):
        snap = snapshot_file(tmp_path / "ghost")
        assert not snap.exists

    def test_snapshot_hash_changes_with_content(self, tmp_path):
        path = tmp_path / "f"
        path.write_text("one")
        first = snapshot_file(path)
        path.write_text("two")
        second = snapshot_file(path)
        assert first.content_hash != second.content_hash

    def test_variable_change_detection(self, tmp_path):
        path = tmp_path / "f"
        path.write_text("one")
        variable = DataVariable("v", [path])
        baseline = variable.observe()
        assert variable.changed_since(baseline) == []
        path.write_text("two")
        assert variable.changed_since(baseline) == [path]


class TestMaturityConditions:
    class FakeInstance:
        variables = {"state": "done"}

    def test_file_exists(self, tmp_path):
        path = tmp_path / "f"
        ok, _ = FileExists(path).check(self.FakeInstance())
        assert not ok
        path.write_text("x")
        ok, _ = FileExists(path).check(self.FakeInstance())
        assert ok

    def test_newer_than(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        a.write_text("x")
        b.write_text("y")
        os.utime(a, (2000, 2000))
        os.utime(b, (1000, 1000))
        ok, _ = NewerThan(a, b).check(self.FakeInstance())
        assert ok
        ok, _ = NewerThan(b, a).check(self.FakeInstance())
        assert not ok

    def test_content_contains(self, tmp_path):
        log = tmp_path / "log"
        log.write_text("completed with 0 errors")
        ok, _ = ContentContains(log, "0 errors").check(self.FakeInstance())
        assert ok
        ok, _ = ContentContains(log, "PASS").check(self.FakeInstance())
        assert not ok
