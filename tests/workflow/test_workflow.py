"""Tests for the workflow engine (paper Section 5, every characteristic)."""

import time

import pytest

from cadinterop.workflow import (
    ContentContains,
    DataVariable,
    FileExists,
    FlowTemplate,
    MetricsCollector,
    PersistentTool,
    PythonAction,
    ShellAction,
    StepDef,
    StepState,
    ToolSessionAction,
    ToolSessionError,
    TriggerManager,
    VariableEquals,
    WorkflowEngine,
    WorkflowError,
)


def py(fn):
    return PythonAction(fn)


def ok_action(api):
    return 0


def fail_action(api):
    return 3


class TestTemplate:
    def test_step_needs_action_or_subflow(self):
        with pytest.raises(WorkflowError):
            StepDef("bad")
        with pytest.raises(WorkflowError):
            StepDef("bad", action=py(ok_action), sub_flow=FlowTemplate("x"))

    def test_duplicate_step_rejected(self):
        template = FlowTemplate("t")
        template.add_step(StepDef("a", action=py(ok_action)))
        with pytest.raises(WorkflowError):
            template.add_step(StepDef("a", action=py(ok_action)))

    def test_unknown_dependency_rejected(self):
        template = FlowTemplate("t")
        template.add_step(StepDef("a", action=py(ok_action), start_after=("ghost",)))
        with pytest.raises(WorkflowError):
            template.validate()

    def test_cycle_rejected(self):
        template = FlowTemplate("t")
        template.add_step(StepDef("a", action=py(ok_action), start_after=("b",)))
        template.add_step(StepDef("b", action=py(ok_action), start_after=("a",)))
        with pytest.raises(WorkflowError):
            template.validate()

    def test_topological_order(self):
        template = FlowTemplate("t")
        template.add_step(StepDef("c", action=py(ok_action), start_after=("b",)))
        template.add_step(StepDef("a", action=py(ok_action)))
        template.add_step(StepDef("b", action=py(ok_action), start_after=("a",)))
        order = template.topological_order()
        assert order.index("a") < order.index("b") < order.index("c")


class TestDefaultStatusPolicy:
    def test_zero_is_success_by_default(self):
        template = FlowTemplate("t")
        template.add_step(StepDef("s", action=py(ok_action)))
        engine = WorkflowEngine()
        instance = engine.instantiate(template)
        summary = engine.run(instance)
        assert summary.ok and instance.state_of("s") is StepState.SUCCEEDED

    def test_nonzero_is_failure_by_default(self):
        template = FlowTemplate("t")
        template.add_step(StepDef("s", action=py(fail_action)))
        engine = WorkflowEngine()
        instance = engine.instantiate(template)
        summary = engine.run(instance)
        assert instance.state_of("s") is StepState.FAILED
        assert "s" in summary.failed

    def test_explicit_status_overrides_exit_code(self):
        """A complex integration sets its state through the API."""

        def complex_tool(api):
            api.set_state(StepState.SUCCEEDED, "parsed tool log: 0 errors")
            return 7  # nonzero exit, but the tool says it succeeded

        template = FlowTemplate("t")
        template.add_step(StepDef("s", action=py(complex_tool), explicit_status=True))
        engine = WorkflowEngine()
        instance = engine.instantiate(template)
        engine.run(instance)
        assert instance.state_of("s") is StepState.SUCCEEDED

    def test_explicit_status_step_must_set_state(self):
        template = FlowTemplate("t")
        template.add_step(StepDef("s", action=py(ok_action), explicit_status=True))
        engine = WorkflowEngine()
        instance = engine.instantiate(template)
        engine.run(instance)
        assert instance.state_of("s") is StepState.FAILED

    def test_action_exception_is_failure(self):
        def crash(api):
            raise RuntimeError("tool dumped core")

        template = FlowTemplate("t")
        template.add_step(StepDef("s", action=py(crash)))
        engine = WorkflowEngine()
        instance = engine.instantiate(template)
        engine.run(instance)
        record = instance.record("s")
        assert record.state is StepState.FAILED
        assert "dumped core" in record.message


class TestOpenLanguageEnvironment:
    def test_shell_python_and_tool_actions_coexist(self):
        tool = PersistentTool("simulator")
        tool.register_feature("compile", lambda: 0)
        tool.register_feature("run", lambda cycles: 0 if cycles > 0 else 1)

        template = FlowTemplate("mixed")
        template.add_step(StepDef("shell", action=ShellAction("true")))
        template.add_step(
            StepDef("python", action=py(ok_action), start_after=("shell",))
        )
        template.add_step(
            StepDef("compile", action=ToolSessionAction(tool, "compile"),
                    start_after=("python",))
        )
        template.add_step(
            StepDef("simulate", action=ToolSessionAction(tool, "run", {"cycles": 100}),
                    start_after=("compile",))
        )
        engine = WorkflowEngine()
        instance = engine.instantiate(template)
        summary = engine.run(instance)
        assert summary.ok
        # The tool was invoked once, then reused over its session.
        assert tool.start_count == 1
        assert tool.call_log == ["compile", "run"]

    def test_shell_nonzero_exit(self):
        template = FlowTemplate("t")
        template.add_step(StepDef("s", action=ShellAction("exit 4")))
        engine = WorkflowEngine()
        instance = engine.instantiate(template)
        engine.run(instance)
        assert instance.record("s").exit_code == 4
        assert instance.state_of("s") is StepState.FAILED

    def test_shell_output_captured(self):
        captured = {}

        def check(api):
            return 0

        template = FlowTemplate("t")
        template.add_step(StepDef("s", action=ShellAction("echo hello-flow")))
        engine = WorkflowEngine()
        instance = engine.instantiate(template)
        engine.run(instance)
        assert instance.state_of("s") is StepState.SUCCEEDED


class TestPersistentTool:
    def test_lifecycle_errors(self):
        tool = PersistentTool("x")
        tool.register_feature("f", lambda: 0)
        with pytest.raises(ToolSessionError):
            tool.call("f")
        tool.start()
        with pytest.raises(ToolSessionError):
            tool.start()
        with pytest.raises(ToolSessionError):
            tool.call("ghost")
        tool.stop()
        with pytest.raises(ToolSessionError):
            tool.stop()

    def test_duplicate_feature(self):
        tool = PersistentTool("x")
        tool.register_feature("f", lambda: 0)
        with pytest.raises(ToolSessionError):
            tool.register_feature("f", lambda: 1)


class TestDependencies:
    def test_start_dependency_blocks(self):
        template = FlowTemplate("t")
        template.add_step(StepDef("first", action=py(fail_action)))
        template.add_step(StepDef("second", action=py(ok_action), start_after=("first",)))
        engine = WorkflowEngine()
        instance = engine.instantiate(template)
        summary = engine.run(instance)
        assert instance.state_of("second") is StepState.PENDING
        assert "second" in summary.blocked

    def test_finish_condition_blocks_premature_completion(self, tmp_path):
        """'insure that a task does not complete too soon'."""
        report = tmp_path / "drc.log"

        template = FlowTemplate("t")
        template.add_step(
            StepDef(
                "drc",
                action=py(ok_action),
                finish_conditions=(ContentContains(report, "0 errors"),),
            )
        )
        engine = WorkflowEngine()
        instance = engine.instantiate(template)
        engine.run(instance)
        assert instance.state_of("drc") is StepState.FAILED

        report.write_text("run complete: 0 errors\n")
        engine.reset(instance, "drc")
        engine.run(instance)
        assert instance.state_of("drc") is StepState.SUCCEEDED

    def test_variable_condition(self):
        def sets_var(api):
            api.set_variable("lvs_clean", True)
            return 0

        template = FlowTemplate("t")
        template.add_step(StepDef("lvs", action=py(sets_var)))
        template.add_step(
            StepDef(
                "tapeout",
                action=py(ok_action),
                start_after=("lvs",),
                finish_conditions=(VariableEquals("lvs_clean", True),),
            )
        )
        engine = WorkflowEngine()
        instance = engine.instantiate(template)
        summary = engine.run(instance)
        assert summary.ok

    def test_permissions(self):
        template = FlowTemplate("t")
        template.add_step(
            StepDef("signoff", action=py(ok_action), permissions={"lead"})
        )
        engine = WorkflowEngine()
        instance = engine.instantiate(template)
        summary = engine.run(instance, user="bob", roles={"designer"})
        assert "signoff" in summary.skipped_permission
        summary = engine.run(instance, user="ann", roles={"lead"})
        assert summary.ok

    def test_reset_cascades_downstream(self):
        template = FlowTemplate("t")
        template.add_step(StepDef("a", action=py(ok_action)))
        template.add_step(StepDef("b", action=py(ok_action), start_after=("a",)))
        template.add_step(StepDef("c", action=py(ok_action), start_after=("b",)))
        engine = WorkflowEngine()
        instance = engine.instantiate(template)
        engine.run(instance)
        reset_steps = engine.reset(instance, "a")
        assert set(reset_steps) == {"a", "b", "c"}
        assert instance.state_of("c") is StepState.PENDING


class TestHierarchy:
    def make_block_flow(self):
        sub = FlowTemplate("block-flow")
        sub.add_step(StepDef("synth", action=py(ok_action)))
        sub.add_step(StepDef("verify", action=py(ok_action), start_after=("synth",)))

        top = FlowTemplate("chip")
        top.add_step(StepDef("plan", action=py(ok_action)))
        top.add_step(StepDef("cpu", sub_flow=sub, start_after=("plan",)))
        top.add_step(StepDef("cache", sub_flow=sub, start_after=("plan",)))
        top.add_step(
            StepDef("assemble", action=py(ok_action), start_after=("cpu", "cache"))
        )
        return top

    def test_same_template_per_block_separate_status(self):
        engine = WorkflowEngine()
        instance = engine.instantiate(self.make_block_flow())
        assert instance.children["cpu"].block == "top.cpu"
        assert instance.children["cache"].block == "top.cache"
        summary = engine.run(instance)
        assert summary.ok and instance.all_succeeded()
        # Status is kept separate per block.
        instance.children["cpu"].record("synth").state = StepState.FAILED
        assert instance.children["cache"].state_of("synth") is StepState.SUCCEEDED

    def test_subflow_failure_fails_parent_step(self):
        sub = FlowTemplate("block-flow")
        sub.add_step(StepDef("synth", action=py(fail_action)))
        top = FlowTemplate("chip")
        top.add_step(StepDef("cpu", sub_flow=sub))
        engine = WorkflowEngine()
        instance = engine.instantiate(top)
        engine.run(instance)
        assert instance.state_of("cpu") is StepState.FAILED

    def test_instantiate_for_blocks(self):
        engine = WorkflowEngine()
        instances = engine.instantiate_for_blocks(
            self.make_block_flow(), ["alu", "fpu"]
        )
        assert set(instances) == {"alu", "fpu"}
        assert instances["alu"].block == "alu"


class TestTriggers:
    def test_data_change_marks_downstream_stale(self, tmp_path):
        netlist = tmp_path / "netlist.v"
        netlist.write_text("module a; endmodule")

        template = FlowTemplate("t")
        template.add_step(StepDef("route", action=py(ok_action)))
        engine = WorkflowEngine()
        instance = engine.instantiate(template)
        engine.run(instance)

        triggers = TriggerManager(engine)
        variable = DataVariable("netlist", [netlist])
        triggers.watch(instance, variable, ["route"])

        assert triggers.poll() == []  # nothing changed yet
        netlist.write_text("module a; wire w; endmodule")
        notifications = triggers.poll()
        assert len(notifications) == 1
        assert notifications[0].kind == "data-changed"
        assert instance.state_of("route") is StepState.NEEDS_RERUN

    def test_rerun_stale_reruns_marked_steps(self, tmp_path):
        counter = {"runs": 0}

        def counting(api):
            counter["runs"] += 1
            return 0

        template = FlowTemplate("t")
        template.add_step(StepDef("route", action=py(counting)))
        engine = WorkflowEngine()
        instance = engine.instantiate(template)
        engine.run(instance)
        engine.mark_needs_rerun(instance, "route")
        summary = engine.rerun_stale(instance)
        assert summary.ok and counter["runs"] == 2

    def test_variable_trigger_procedure(self):
        fired = []

        template = FlowTemplate("t")

        def sets(api):
            api.set_variable("drc_errors", 12)
            return 0

        template.add_step(StepDef("drc", action=py(sets)))
        engine = WorkflowEngine()
        triggers = TriggerManager(engine)
        triggers.on_variable("drc_errors", lambda inst, name, value: fired.append(value))
        instance = engine.instantiate(template)
        engine.run(instance)
        assert fired == [12]
        assert any(n.kind == "variable-trigger" for n in triggers.notifications)


class TestMetrics:
    def test_collection_and_tuning(self):
        fake_time = [0.0]

        def clock():
            fake_time[0] += 1.0
            return fake_time[0]

        template = FlowTemplate("t")
        template.add_step(StepDef("fast", action=py(ok_action)))
        template.add_step(StepDef("slow", action=py(ok_action), start_after=("fast",)))
        template.add_step(StepDef("flaky", action=py(fail_action), start_after=("fast",)))
        engine = WorkflowEngine(clock=clock)
        instance = engine.instantiate(template)
        engine.run(instance)

        collector = MetricsCollector()
        collector.collect(instance)
        assert collector.step("fast").runs == 1
        assert collector.most_failure_prone().name == "flaky"
        assert collector.bottleneck() is not None
        report = collector.report()
        assert "flaky" in report and "bottleneck" in report

    def test_publish_exports_into_obs_registry(self):
        from cadinterop.obs import MetricsRegistry

        template = FlowTemplate("t")
        template.add_step(StepDef("build", action=py(ok_action)))
        template.add_step(StepDef("flaky", action=py(fail_action)))
        engine = WorkflowEngine()
        instance = engine.instantiate(template)
        engine.run(instance)

        collector = MetricsCollector()
        collector.collect(instance)
        registry = MetricsRegistry()
        collector.publish(registry)
        snapshot = registry.snapshot()
        assert snapshot["workflow.step.runs[build]"]["value"] == 1
        assert snapshot["workflow.step.failures[flaky]"]["value"] == 1
        assert snapshot["workflow.step.seconds[build]"]["count"] == 1

    def test_engine_counts_steps_when_metrics_enabled(self):
        from cadinterop.obs import disable_metrics, enable_metrics

        template = FlowTemplate("t")
        template.add_step(StepDef("build", action=py(ok_action)))
        template.add_step(StepDef("flaky", action=py(fail_action)))
        engine = WorkflowEngine()
        instance = engine.instantiate(template)
        registry = enable_metrics()
        try:
            engine.run(instance)
        finally:
            disable_metrics()
        snapshot = registry.snapshot()
        assert snapshot["workflow.steps.executed"]["value"] == 2
        assert snapshot["workflow.steps.succeeded"]["value"] == 1
        assert snapshot["workflow.steps.failed"]["value"] == 1
