"""Tests for workflow state persistence."""

import json

import pytest

from cadinterop.workflow import (
    FlowTemplate,
    PythonAction,
    StepDef,
    StepState,
    WorkflowEngine,
    WorkflowError,
)
from cadinterop.workflow.persistence import (
    instance_to_dict,
    load_instance,
    save_instance,
)


def build_template():
    sub = FlowTemplate("block")
    sub.add_step(StepDef("synth", action=PythonAction(lambda api: 0)))
    sub.add_step(StepDef("sim", action=PythonAction(lambda api: 0), start_after=("synth",)))

    top = FlowTemplate("chip")
    top.add_step(StepDef("plan", action=PythonAction(lambda api: 0)))
    top.add_step(StepDef("cpu", sub_flow=sub, start_after=("plan",)))
    top.add_step(StepDef("fail", action=PythonAction(lambda api: 3), start_after=("plan",)))
    return top


@pytest.fixture()
def run_instance():
    engine = WorkflowEngine()
    template = build_template()
    instance = engine.instantiate(template)
    engine.run(instance)
    instance.variables["lvs_clean"] = True
    return template, instance


class TestRoundTrip:
    def test_save_load_preserves_states(self, run_instance, tmp_path):
        template, instance = run_instance
        path = tmp_path / "state.json"
        save_instance(instance, path)
        restored = load_instance(path, template)
        for name in instance.records:
            original = instance.records[name]
            loaded = restored.records[name]
            assert loaded.state is original.state
            assert loaded.exit_code == original.exit_code
            assert loaded.runs == original.runs
        assert restored.variables == instance.variables
        assert restored.events == instance.events

    def test_children_restored(self, run_instance, tmp_path):
        template, instance = run_instance
        path = tmp_path / "state.json"
        save_instance(instance, path)
        restored = load_instance(path, template)
        assert restored.children["cpu"].block == "top.cpu"
        assert restored.children["cpu"].state_of("sim") is StepState.SUCCEEDED

    def test_resume_after_restore(self, run_instance, tmp_path):
        """A restored flow can continue: reset the failed step and rerun."""
        template, instance = run_instance
        path = tmp_path / "state.json"
        save_instance(instance, path)

        restored = load_instance(path, template)
        assert restored.state_of("fail") is StepState.FAILED
        engine = WorkflowEngine()
        # Fix the action and rerun just that step.
        template.step("fail").action = PythonAction(lambda api: 0)
        engine.reset(restored, "fail")
        summary = engine.run(restored)
        assert restored.state_of("fail") is StepState.SUCCEEDED
        assert summary.ok


class TestValidation:
    def test_wrong_template_rejected(self, run_instance, tmp_path):
        _template, instance = run_instance
        path = tmp_path / "state.json"
        save_instance(instance, path)
        other = FlowTemplate("other")
        other.add_step(StepDef("x", action=PythonAction(lambda api: 0)))
        with pytest.raises(WorkflowError):
            load_instance(path, other)

    def test_step_drift_rejected(self, run_instance, tmp_path):
        template, instance = run_instance
        path = tmp_path / "state.json"
        data = instance_to_dict(instance)
        del data["records"]["plan"]
        path.write_text(json.dumps(data))
        with pytest.raises(WorkflowError):
            load_instance(path, template)

    def test_bad_version_rejected(self, run_instance, tmp_path):
        template, instance = run_instance
        data = instance_to_dict(instance)
        data["version"] = 99
        path = tmp_path / "state.json"
        path.write_text(json.dumps(data))
        with pytest.raises(WorkflowError):
            load_instance(path, template)

    def test_corrupt_file_rejected(self, run_instance, tmp_path):
        template, _instance = run_instance
        path = tmp_path / "state.json"
        path.write_text("{not json")
        with pytest.raises(WorkflowError):
            load_instance(path, template)

    def test_missing_file_rejected(self, run_instance, tmp_path):
        template, _instance = run_instance
        with pytest.raises(WorkflowError):
            load_instance(tmp_path / "ghost.json", template)
