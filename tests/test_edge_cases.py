"""Edge-case tests across packages: the corners the main suites skip."""

import pytest

from cadinterop.common.geometry import Orientation, Point, Rect, Segment, Transform
from cadinterop.common.namemap import NameMap


class TestGeometryCorners:
    def test_segment_transform(self):
        segment = Segment(Point(0, 0), Point(10, 0))
        transformed = segment.transformed(Transform(Point(5, 5), Orientation.R90))
        assert transformed == Segment(Point(5, 5), Point(5, 15))

    def test_segment_scaled(self):
        from fractions import Fraction

        segment = Segment(Point(0, 0), Point(16, 0))
        assert segment.scaled(Fraction(5, 8)) == Segment(Point(0, 0), Point(10, 0))

    def test_rect_corners_order(self):
        corners = Rect(0, 0, 2, 3).corners()
        assert corners[0] == Point(0, 0) and corners[2] == Point(2, 3)

    def test_orientation_full_group_closure(self):
        for a in Orientation:
            for b in Orientation:
                assert a.compose(b) in Orientation


class TestNetlistHelpers:
    def test_net_of_terminal(self):
        from cadinterop.schematic.netlist import extract
        from cadinterop.schematic.samples import (
            build_sample_schematic,
            build_vl_libraries,
        )

        netlist = extract(build_sample_schematic(build_vl_libraries()))
        net = netlist.net_of_terminal(("U1", "Y"))
        assert net is not None and net.name == "N1"
        assert netlist.net_of_terminal(("GHOST", "X")) is None


class TestWorkflowEdges:
    def test_reset_blocked_by_running_successor(self):
        from cadinterop.workflow import (
            FlowTemplate, PythonAction, StepDef, StepState, WorkflowEngine,
            WorkflowError,
        )

        template = FlowTemplate("t")
        template.add_step(StepDef("a", action=PythonAction(lambda api: 0)))
        template.add_step(StepDef("b", action=PythonAction(lambda api: 0),
                                  start_after=("a",)))
        engine = WorkflowEngine()
        instance = engine.instantiate(template)
        engine.run(instance)
        instance.record("b").state = StepState.RUNNING
        ok, reason = engine.can_reset(instance, "a")
        assert not ok and "running" in reason
        with pytest.raises(WorkflowError):
            engine.reset(instance, "a")

    def test_api_rejects_nonterminal_explicit_state(self):
        from cadinterop.workflow import (
            FlowTemplate, PythonAction, StepDef, StepState, WorkflowEngine,
        )

        def bad(api):
            api.set_state(StepState.RUNNING)
            return 0

        template = FlowTemplate("t")
        template.add_step(StepDef("s", action=PythonAction(bad), explicit_status=True))
        engine = WorkflowEngine()
        instance = engine.instantiate(template)
        engine.run(instance)
        # Setting a non-terminal state is itself an error -> step fails.
        assert instance.state_of("s") is StepState.FAILED

    def test_variable_exchange_between_steps(self):
        from cadinterop.workflow import (
            FlowTemplate, PythonAction, StepDef, WorkflowEngine,
        )

        def producer(api):
            api.set_variable("gate_count", 1234)
            return 0

        seen = {}

        def consumer(api):
            seen["value"] = api.get_variable("gate_count")
            return 0

        template = FlowTemplate("t")
        template.add_step(StepDef("p", action=PythonAction(producer)))
        template.add_step(StepDef("c", action=PythonAction(consumer), start_after=("p",)))
        engine = WorkflowEngine()
        instance = engine.instantiate(template)
        engine.run(instance)
        assert seen["value"] == 1234


class TestPersonalityRenameCompleteness:
    def test_rename_covers_every_construct(self):
        from cadinterop.hdl.parser import parse_module
        from cadinterop.hdl.personalities import rename_module_signals
        from cadinterop.hdl.simulator import simulate

        module = parse_module(
            """
            module m (inp, outp);
              input inp; output outp;
              reg r; wire w;
              assign #1 w = inp & r;
              nand g (outp, w, r);
              always @(posedge inp) r <= ~r;
              initial r = 1'b0;
            endmodule
            """
        )
        mapping = {name: f"x_{name}" for name in module.nets}
        renamed = rename_module_signals(module, mapping)
        assert set(renamed.nets) == {f"x_{n}" for n in module.nets}
        # Behaviorally identical under renaming.
        sim_a = simulate(module, until=10)
        sim_b = simulate(renamed, until=10)
        for name in module.nets:
            assert sim_a.value(name) == sim_b.value(f"x_{name}")


class TestCoreCornerCases:
    def test_consumers_before_producers_edge_order(self):
        from cadinterop.core.tasks import TaskGraph, task

        graph = TaskGraph("g")
        # Consumer added first: edges must still appear.
        graph.add_task(task("use", "consume", ["thing"], ["done"]))
        graph.add_task(task("make", "produce", [], ["thing"]))
        assert ("make", "thing", "use") in graph.edges()

    def test_self_loop_not_an_edge(self):
        from cadinterop.core.tasks import TaskGraph, task

        graph = TaskGraph("g")
        graph.add_task(task("iterate", "refines its own output", ["draft"], ["draft"]))
        assert graph.edges() == []
        assert graph.successors("iterate") == set()

    def test_catalog_tools_implementing_unknown_task(self):
        from cadinterop.core.library import standard_tool_catalog

        assert standard_tool_catalog().tools_implementing("no-such-task") == []


class TestPnRCorners:
    def test_hpwl_counts_pads(self):
        from cadinterop.pnr.placement import hpwl
        from cadinterop.pnr.design import PnRDesign, PnRInstance, inst_terminal, pad_terminal
        from cadinterop.pnr.samples import build_cell_library
        from cadinterop.common.geometry import Point

        library = build_cell_library()
        design = PnRDesign("d")
        instance = design.add_instance(PnRInstance("u0", library.cell("inv")))
        instance.location = Point(100, 100)
        design.add_net("n", [inst_terminal("u0", "A"), pad_terminal("p")])
        without_pad = hpwl(design)
        with_pad = hpwl(design, {"p": Point(0, 0)})
        assert without_pad == 0  # single point
        assert with_pad > 0

    def test_router_single_terminal_net(self):
        from cadinterop.common.geometry import Point, Rect
        from cadinterop.pnr.design import PnRDesign, pad_terminal
        from cadinterop.pnr.floorplan import Floorplan
        from cadinterop.pnr.routing import GridRouter
        from cadinterop.pnr.tech import generic_two_layer_tech

        design = PnRDesign("d")
        design.add_net("lonely", [pad_terminal("p")])
        router = GridRouter(
            generic_two_layer_tech(), Floorplan("f", Rect(0, 0, 100, 100)),
            {"p": Point(50, 50)},
        )
        result = router.route_design(design)
        assert result.failed == []
        assert result.routed["lonely"].wirelength_tracks == 0

    def test_instance_outline_requires_placement(self):
        from cadinterop.pnr.design import PnRInstance
        from cadinterop.pnr.samples import build_cell_library

        instance = PnRInstance("u", build_cell_library().cell("inv"))
        with pytest.raises(ValueError):
            instance.outline()
        with pytest.raises(ValueError):
            instance.pin_position("A")


class TestNameMapEdge:
    def test_transform_changing_after_use_is_isolated(self):
        # Each NameMap owns its transform; confirm aliased_groups reflects it.
        nm = NameMap(lambda n: n[:2])
        nm.map("abc")
        nm.map("abd")
        assert nm.aliased_groups() == {"ab": ["abc", "abd"]}
