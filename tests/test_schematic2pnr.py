"""Tests for the schematic -> P&R bridge (migration output into layout)."""

import pytest

from cadinterop.common.geometry import Point, Rect
from cadinterop.pnr.floorplan import Floorplan
from cadinterop.pnr.placement import RowPlacer
from cadinterop.pnr.routing import GridRouter
from cadinterop.pnr.samples import build_cell_library
from cadinterop.pnr.tech import generic_two_layer_tech
from cadinterop.schematic.migrate import Migrator
from cadinterop.schematic.samples import (
    build_sample_plan,
    build_vl_libraries,
    generate_chain_schematic,
)
from cadinterop.schematic2pnr import (
    BindingTable,
    CellBinding,
    sample_binding_table,
    schematic_to_pnr,
)


@pytest.fixture(scope="module")
def migrated_chain():
    """A chain design migrated into the Composer-like dialect."""
    libraries = build_vl_libraries()
    cell = generate_chain_schematic(libraries, pages=2, chains_per_page=2, stages=4)
    result = Migrator(build_sample_plan(source_libraries=libraries)).migrate(cell)
    assert result.clean
    return result.schematic


class TestBindingTable:
    def test_duplicate_binding_rejected(self):
        table = BindingTable()
        table.add(CellBinding("l", "s", "c"))
        with pytest.raises(ValueError):
            table.add(CellBinding("l", "s", "other"))

    def test_pin_map_defaults_to_identity(self):
        binding = CellBinding("l", "s", "c", (("A", "X"),))
        assert binding.map_pin("A") == "X"
        assert binding.map_pin("B") == "B"


class TestConversion:
    def test_chain_converts_cleanly(self, migrated_chain):
        conversion = schematic_to_pnr(
            migrated_chain, sample_binding_table(), build_cell_library()
        )
        assert conversion.ok, conversion.log.summary()
        # All 16 inverters bound; connectors skipped silently.
        assert len(conversion.design.instances) == 16
        assert not conversion.skipped_instances

    def test_cross_page_nets_preserved(self, migrated_chain):
        """Nets joined by off-page connectors arrive as single P&R nets."""
        conversion = schematic_to_pnr(
            migrated_chain, sample_binding_table(), build_cell_library()
        )
        crossers = [
            net for net, terminals in conversion.design.nets.items()
            if len({who for _k, who, _p in terminals}) >= 2 and net.startswith("CH")
        ]
        assert crossers  # boundary nets exist and connect both pages' cells

    def test_pin_names_mapped(self, migrated_chain):
        conversion = schematic_to_pnr(
            migrated_chain, sample_binding_table(), build_cell_library()
        )
        pins = {
            pin
            for terminals in conversion.design.nets.values()
            for kind, _who, pin in terminals
            if kind == "inst"
        }
        # Layout pin names, not schematic pin names.
        assert pins <= {"A", "Y"}
        assert "IN" not in pins and "OUT" not in pins

    def test_unbound_symbol_reported(self, migrated_chain):
        table = BindingTable()  # empty: nothing bindable
        conversion = schematic_to_pnr(
            migrated_chain, table, build_cell_library()
        )
        assert not conversion.ok
        assert len(conversion.skipped_instances) == 16

    def test_bad_pin_map_reported(self, migrated_chain):
        table = BindingTable()
        table.add(CellBinding("cd_basic", "inv", "inv", (("IN", "NOPE"),)))
        conversion = schematic_to_pnr(migrated_chain, table, build_cell_library())
        assert not conversion.ok
        assert any("NOPE" in issue.message for issue in conversion.log)


class TestFullPipeline:
    def test_migrated_schematic_places_and_routes(self, migrated_chain):
        """VL schematic -> migration -> CD schematic -> P&R, end to end."""
        conversion = schematic_to_pnr(
            migrated_chain, sample_binding_table(), build_cell_library()
        )
        assert conversion.ok
        tech = generic_two_layer_tech()
        floorplan = Floorplan("chain", Rect(0, 0, 700, 700))
        design = conversion.design
        placement = RowPlacer(tech, floorplan, seed=9).place(design, {})
        assert placement.placed == len(design.instances)
        router = GridRouter(tech, floorplan, {})
        routing = router.route_design(design)
        assert routing.failed == [], routing.failed
