"""Tests for cadinterop.common.properties."""

import pytest

from cadinterop.common.properties import Property, PropertyBag


class TestPropertyBag:
    def test_set_get(self):
        bag = PropertyBag()
        bag.set("w", "2u")
        assert bag.get("w") == "2u"
        assert bag.get("missing") is None
        assert bag.get("missing", 0) == 0

    def test_init_from_dict(self):
        bag = PropertyBag({"a": 1, "b": "x"})
        assert bag.as_dict() == {"a": 1, "b": "x"}

    def test_ordering_preserved(self):
        bag = PropertyBag()
        for name in ("z", "a", "m"):
            bag.set(name, 1)
        assert bag.names() == ["z", "a", "m"]

    def test_overwrite_keeps_position(self):
        bag = PropertyBag()
        bag.set("a", 1)
        bag.set("b", 2)
        bag.set("a", 3)
        assert bag.names() == ["a", "b"]
        assert bag.get("a") == 3

    def test_rename_preserves_position_and_value(self):
        bag = PropertyBag({"x": 1, "y": 2, "z": 3})
        assert bag.rename("y", "why")
        assert bag.names() == ["x", "why", "z"]
        assert bag.get("why") == 2

    def test_rename_missing_returns_false(self):
        assert not PropertyBag().rename("nope", "x")

    def test_remove(self):
        bag = PropertyBag({"a": 1})
        removed = bag.remove("a")
        assert removed is not None and removed.value == 1
        assert bag.remove("a") is None

    def test_provenance_tracked(self):
        bag = PropertyBag()
        bag.set("w", "2u", origin="a/L")
        assert bag.get_property("w").origin == "a/L"

    def test_rename_updates_origin(self):
        bag = PropertyBag({"old": 1})
        bag.rename("old", "new", origin="property-map")
        assert bag.get_property("new").origin == "property-map"

    def test_copy_is_independent(self):
        bag = PropertyBag({"a": 1})
        clone = bag.copy()
        clone.set("a", 2)
        assert bag.get("a") == 1

    def test_equality_by_value(self):
        assert PropertyBag({"a": 1}) == PropertyBag({"a": 1})
        assert PropertyBag({"a": 1}) != PropertyBag({"a": 2})

    def test_iteration_and_items(self):
        bag = PropertyBag({"a": 1, "b": 2})
        assert [p.name for p in bag] == ["a", "b"]
        assert dict(bag.items()) == {"a": 1, "b": 2}

    def test_contains_len(self):
        bag = PropertyBag({"a": 1})
        assert "a" in bag and "b" not in bag
        assert len(bag) == 1


class TestProperty:
    def test_renamed_returns_new(self):
        prop = Property("a", 1)
        renamed = prop.renamed("b")
        assert renamed.name == "b" and prop.name == "a"

    def test_with_value(self):
        prop = Property("a", 1, origin="native")
        changed = prop.with_value(2, origin="map")
        assert changed.value == 2 and changed.origin == "map"
        assert prop.value == 1
