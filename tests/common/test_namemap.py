"""Tests for cadinterop.common.namemap."""

import pytest
from hypothesis import given, strategies as st

from cadinterop.common.namemap import (
    NameCollisionError,
    NameMap,
    hierarchical_join,
    truncating_transform,
)

identifiers = st.from_regex(r"[a-z_][a-z_0-9]{0,15}", fullmatch=True)


class TestNameMap:
    def test_identity_by_default(self):
        nm = NameMap()
        assert nm.map("clk") == "clk"
        assert nm.renames == []

    def test_stable_repeat_mapping(self):
        nm = NameMap(truncating_transform(8))
        assert nm.map("cntr_reset1") == nm.map("cntr_reset1")

    def test_paper_truncation_example(self):
        """cntr_reset1 and cntr_reset2 both prefer cntr_res (aliasing)."""
        nm = NameMap(truncating_transform(8))
        first = nm.map("cntr_reset1")
        second = nm.map("cntr_reset2")
        assert first == "cntr_res"
        assert second == "cntr_res_2"
        assert nm.aliased_groups() == {"cntr_res": ["cntr_reset1", "cntr_reset2"]}

    def test_non_uniquify_raises_like_buggy_tools_should(self):
        nm = NameMap(truncating_transform(8), uniquify=False)
        nm.map("cntr_reset1")
        with pytest.raises(NameCollisionError):
            nm.map("cntr_reset2")

    def test_unmap_recovers_source(self):
        nm = NameMap(truncating_transform(4))
        target = nm.map("longname")
        assert nm.unmap(target) == "longname"

    def test_unmap_unknown_raises(self):
        with pytest.raises(KeyError):
            NameMap().unmap("ghost")

    def test_force_consistent(self):
        nm = NameMap()
        nm.force("in", "in_sig")
        nm.force("in", "in_sig")  # idempotent
        assert nm.target_of("in") == "in_sig"
        assert nm.source_of("in_sig") == "in"

    def test_force_conflicting_source(self):
        nm = NameMap()
        nm.force("in", "in_sig")
        with pytest.raises(NameCollisionError):
            nm.force("in", "other")

    def test_force_taken_target(self):
        nm = NameMap()
        nm.force("a", "x")
        with pytest.raises(NameCollisionError):
            nm.force("b", "x")

    def test_renames_record_reason(self):
        nm = NameMap(lambda n: n.upper())
        nm.map("clk", reason="uppercase convention")
        assert nm.renames[0].reason == "uppercase convention"

    def test_uniquify_counter_skips_taken(self):
        nm = NameMap(truncating_transform(1))
        assert nm.map("ab") == "a"
        assert nm.map("ac") == "a_2"
        assert nm.map("ad") == "a_3"

    @given(st.lists(identifiers, unique=True, max_size=30))
    def test_targets_always_unique_and_invertible(self, names):
        nm = NameMap(truncating_transform(4))
        targets = [nm.map(n) for n in names]
        assert len(set(targets)) == len(names)
        for name, target in zip(names, targets):
            assert nm.unmap(target) == name

    @given(st.lists(identifiers, unique=True, max_size=30))
    def test_len_and_iter(self, names):
        nm = NameMap()
        for n in names:
            nm.map(n)
        assert len(nm) == len(names)
        assert dict(iter(nm)) == {n: n for n in names}


class TestHelpers:
    def test_hierarchical_join(self):
        assert hierarchical_join(("top", "u1", "ff")) == "top_u1_ff"
        assert hierarchical_join(("top", "u1"), separator=".") == "top.u1"

    def test_truncating_transform_validates(self):
        with pytest.raises(ValueError):
            truncating_transform(0)
