"""Tests for cadinterop.common.diagnostics."""

import pytest

from cadinterop.common.diagnostics import (
    Category,
    Issue,
    IssueLog,
    Severity,
    render_checklist,
)


def make_log():
    log = IssueLog()
    log.add(Severity.ERROR, Category.BUS_SYNTAX, "OUT-", "postfix not accepted",
            tool="composer-like", remedy="fold postfix into name")
    log.add(Severity.WARNING, Category.SCALING, "U1", "off-grid point snapped")
    log.add(Severity.INFO, Category.SCALING, "cell", "scaled by 5/8")
    return log


class TestIssueLog:
    def test_len_and_bool(self):
        log = IssueLog()
        assert not log and len(log) == 0
        log.add(Severity.INFO, Category.COSMETIC, "x", "y")
        assert log and len(log) == 1

    def test_by_category(self):
        log = make_log()
        assert len(log.by_category(Category.SCALING)) == 2
        assert len(log.by_category(Category.VERIFICATION)) == 0

    def test_by_severity_is_at_least(self):
        log = make_log()
        assert len(log.by_severity(Severity.WARNING)) == 2

    def test_worst(self):
        assert make_log().worst is Severity.ERROR
        assert IssueLog().worst is None

    def test_has_errors(self):
        log = IssueLog()
        assert not log.has_errors()
        log.add(Severity.ERROR, Category.SEMANTICS, "a", "b")
        assert log.has_errors()

    def test_merge_preserves_both(self):
        a, b = make_log(), make_log()
        a.merge(b)
        assert len(a) == 6

    def test_counts_and_summary(self):
        log = make_log()
        counts = log.counts()
        assert counts[Severity.ERROR] == 1
        assert "1 error" in log.summary()
        assert IssueLog().summary() == "no issues"

    def test_filter(self):
        log = make_log()
        assert len(log.filter(lambda i: i.tool == "composer-like")) == 1

    def test_issues_snapshot_is_immutable_view(self):
        log = make_log()
        snapshot = log.issues
        log.add(Severity.INFO, Category.COSMETIC, "z", "m")
        assert len(snapshot) == 3


class TestSeverity:
    def test_ordering(self):
        assert Severity.FATAL > Severity.ERROR > Severity.WARNING > Severity.NOTE > Severity.INFO


class TestIssueFormat:
    def test_format_includes_tool_and_remedy(self):
        issue = Issue(Severity.ERROR, Category.BUS_SYNTAX, "n", "msg",
                      tool="toolA", remedy="do this")
        text = issue.format()
        assert "[toolA]" in text and "=> do this" in text and "ERROR" in text


class TestChecklist:
    def test_groups_by_category(self):
        text = render_checklist(make_log())
        assert "## bus-syntax (1)" in text
        assert "## scaling (2)" in text

    def test_checkbox_and_action_lines(self):
        text = render_checklist(make_log())
        assert "[ ] (ERROR) OUT- [composer-like]: postfix not accepted" in text
        assert "action: fold postfix into name" in text

    def test_severity_sorted_within_category(self):
        log = IssueLog()
        log.add(Severity.INFO, Category.SCALING, "low", "info msg")
        log.add(Severity.ERROR, Category.SCALING, "high", "error msg")
        text = render_checklist(log)
        assert text.index("error msg") < text.index("info msg")

    def test_empty_log(self):
        assert "(no interoperability issues found)" in render_checklist(IssueLog())

    def test_total_line(self):
        assert "total: 3 issue(s)" in render_checklist(make_log())
