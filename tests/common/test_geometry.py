"""Tests for cadinterop.common.geometry."""

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from cadinterop.common.geometry import (
    Grid,
    OffGridError,
    Orientation,
    Point,
    Rect,
    Segment,
    Transform,
    path_segments,
)

coords = st.integers(min_value=-10_000, max_value=10_000)
points = st.builds(Point, coords, coords)
orientations = st.sampled_from(list(Orientation))


class TestPoint:
    def test_translate(self):
        assert Point(1, 2).translated(3, -5) == Point(4, -3)

    def test_scaled_exact(self):
        assert Point(16, 32).scaled(Fraction(5, 8)) == Point(10, 20)

    def test_scaled_off_lattice_raises(self):
        with pytest.raises(OffGridError):
            Point(3, 0).scaled(Fraction(5, 8))

    def test_manhattan(self):
        assert Point(0, 0).manhattan_to(Point(3, 4)) == 7

    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_unpacking(self):
        x, y = Point(7, 9)
        assert (x, y) == (7, 9)


class TestOrientation:
    def test_r90_rotates_ccw(self):
        assert Orientation.R90.apply(Point(1, 0)) == Point(0, 1)

    def test_mx_mirrors_about_x(self):
        assert Orientation.MX.apply(Point(2, 3)) == Point(2, -3)

    def test_compose_r90_r90(self):
        assert Orientation.R90.compose(Orientation.R90) is Orientation.R180

    @given(orientations, orientations, points)
    def test_compose_matches_sequential_application(self, first, second, point):
        composed = first.compose(second)
        assert composed.apply(point) == second.apply(first.apply(point))

    @given(orientations)
    def test_inverse_roundtrip(self, orientation):
        assert orientation.compose(orientation.inverse()) is Orientation.R0

    @given(orientations, points)
    def test_inverse_undoes(self, orientation, point):
        assert orientation.inverse().apply(orientation.apply(point)) == point

    def test_mirrored_flags(self):
        assert Orientation.MY.is_mirrored
        assert not Orientation.R180.is_mirrored


class TestTransform:
    def test_apply_rotation_then_offset(self):
        t = Transform(Point(10, 0), Orientation.R90)
        assert t.apply(Point(1, 0)) == Point(10, 1)

    @given(points, orientations, points, orientations, points)
    def test_compose(self, off1, o1, off2, o2, p):
        inner = Transform(off1, o1)
        outer = Transform(off2, o2)
        assert inner.compose(outer).apply(p) == outer.apply(inner.apply(p))

    @given(points, orientations, points)
    def test_inverse(self, offset, orientation, p):
        t = Transform(offset, orientation)
        assert t.inverse().apply(t.apply(p)) == p

    def test_apply_rect_normalizes_corners(self):
        t = Transform(Point(0, 0), Orientation.R180)
        assert t.apply_rect(Rect(0, 0, 2, 3)) == Rect(-2, -3, 0, 0)


class TestRect:
    def test_degenerate_raises(self):
        with pytest.raises(ValueError):
            Rect(5, 0, 1, 2)

    def test_spanning_any_corner_order(self):
        assert Rect.spanning(Point(5, 1), Point(2, 7)) == Rect(2, 1, 5, 7)

    def test_bounding(self):
        r = Rect.bounding([Point(0, 5), Point(3, -1), Point(2, 2)])
        assert r == Rect(0, -1, 3, 5)

    def test_bounding_empty_raises(self):
        with pytest.raises(ValueError):
            Rect.bounding([])

    def test_contains_boundary(self):
        assert Rect(0, 0, 4, 4).contains(Point(4, 0))

    def test_intersects_and_intersection(self):
        a, b = Rect(0, 0, 4, 4), Rect(2, 2, 8, 8)
        assert a.intersects(b)
        assert a.intersection(b) == Rect(2, 2, 4, 4)

    def test_disjoint_intersection_raises(self):
        with pytest.raises(ValueError):
            Rect(0, 0, 1, 1).intersection(Rect(5, 5, 6, 6))

    def test_union_area(self):
        assert Rect(0, 0, 1, 1).union(Rect(3, 3, 4, 4)) == Rect(0, 0, 4, 4)

    def test_inflate(self):
        assert Rect(1, 1, 2, 2).inflated(1) == Rect(0, 0, 3, 3)

    def test_scaled(self):
        assert Rect(0, 0, 16, 32).scaled(Fraction(5, 8)) == Rect(0, 0, 10, 20)


class TestSegment:
    def test_diagonal_rejected(self):
        with pytest.raises(ValueError):
            Segment(Point(0, 0), Point(1, 1))

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            Segment(Point(1, 1), Point(1, 1))

    def test_contains_point_on_horizontal(self):
        seg = Segment(Point(0, 5), Point(10, 5))
        assert seg.contains_point(Point(7, 5))
        assert not seg.contains_point(Point(7, 6))

    def test_touches_crossing(self):
        h = Segment(Point(0, 5), Point(10, 5))
        v = Segment(Point(5, 5), Point(5, 9))
        assert h.touches(v)

    def test_not_touching(self):
        assert not Segment(Point(0, 0), Point(1, 0)).touches(
            Segment(Point(5, 5), Point(6, 5))
        )

    def test_canonical_direction_free(self):
        a = Segment(Point(4, 0), Point(0, 0)).canonical()
        b = Segment(Point(0, 0), Point(4, 0)).canonical()
        assert a == b

    def test_path_segments_drops_repeats(self):
        segs = path_segments([Point(0, 0), Point(0, 0), Point(4, 0), Point(4, 4)])
        assert len(segs) == 2


class TestGrid:
    vl = Grid("tenth", 160, 16)
    cd = Grid("sixteenth", 160, 10)

    def test_pitch_inches(self):
        assert self.vl.pitch_inches == Fraction(1, 10)
        assert self.cd.pitch_inches == Fraction(1, 16)

    def test_scale_factor(self):
        assert self.vl.scale_factor_to(self.cd) == Fraction(5, 8)

    def test_grid_index_roundtrip(self):
        p = self.vl.point_at(3, -2)
        assert self.vl.index_of(p) == (3, -2)

    def test_index_off_grid_raises(self):
        with pytest.raises(OffGridError):
            self.vl.index_of(Point(1, 0))

    def test_snap_rounds_to_nearest(self):
        assert self.cd.snap(Point(14, 16)) == Point(10, 20)

    @given(st.integers(-50, 50), st.integers(-50, 50))
    def test_on_grid_source_lands_on_target(self, ix, iy):
        """Paper's scaling invariant: grid index k -> grid index k."""
        source = self.vl.point_at(ix, iy)
        scaled = source.scaled(self.vl.scale_factor_to(self.cd))
        assert self.cd.is_on_grid(scaled)
        assert self.cd.index_of(scaled) == (ix, iy)

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            Grid("bad", 0, 1)
