"""Tests for technology and cell abstract models."""

import pytest

from cadinterop.common.geometry import Orientation, Point, Rect
from cadinterop.pnr.cells import (
    Blockage,
    CellAbstract,
    CellLibrary,
    CellPin,
    ConnectionProps,
    PinShape,
    derive_access_from_blockages,
    effective_access,
)
from cadinterop.pnr.samples import build_cell_library
from cadinterop.pnr.tech import Layer, Technology, generic_two_layer_tech


class TestTechnology:
    def test_layers_ordered(self):
        tech = generic_two_layer_tech()
        assert [l.name for l in tech.routing_layers()] == ["M1", "M2"]

    def test_layer_for_direction(self):
        tech = generic_two_layer_tech()
        assert tech.layer_for_direction("horizontal").name == "M1"
        assert tech.layer_for_direction("vertical").name == "M2"

    def test_duplicate_layer_rejected(self):
        tech = generic_two_layer_tech()
        with pytest.raises(ValueError):
            tech.add_layer(Layer("M1", 9, "horizontal", 1, 1, 0.1, 0.1))

    def test_coupling_falls_with_distance(self):
        layer = generic_two_layer_tech().layer("M1")
        assert layer.coupling_at(1) > layer.coupling_at(2) > layer.coupling_at(3)

    def test_coupling_distance_validated(self):
        with pytest.raises(ValueError):
            generic_two_layer_tech().layer("M1").coupling_at(0)

    def test_bad_direction(self):
        with pytest.raises(ValueError):
            Layer("MX", 1, "diagonal", 1, 1, 0.1, 0.1)


class TestConnectionProps:
    def test_bad_access_direction(self):
        with pytest.raises(ValueError):
            ConnectionProps(access=frozenset({"up"}))

    def test_defaults(self):
        props = ConnectionProps()
        assert props.access is None and not props.must_connect


class TestCellAbstract:
    def test_duplicate_pin_rejected(self):
        shape = [PinShape("M1", Rect(0, 0, 2, 2))]
        with pytest.raises(ValueError):
            CellAbstract(
                name="bad", width=10, height=10,
                pins=[CellPin("A", shape), CellPin("A", shape)],
            )

    def test_pin_needs_shape(self):
        with pytest.raises(ValueError):
            CellPin("A", [])

    def test_pin_lookup(self):
        lib = build_cell_library()
        inv = lib.cell("inv")
        assert inv.pin("A").props.access == frozenset({"west", "north"})
        with pytest.raises(KeyError):
            inv.pin("Z")

    def test_equivalent_groups(self):
        nand = build_cell_library().cell("nand2")
        assert nand.equivalent_groups() == {"inputs": ["A", "B"]}

    def test_library_protocol(self):
        lib = build_cell_library()
        assert "inv" in lib and "ghost" not in lib
        assert len(lib) == 4
        with pytest.raises(ValueError):
            lib.add(lib.cell("inv"))


class TestAccessDerivation:
    def test_blockage_blocks_north(self):
        """The dff's M1 blockage sits above D/Q pins: north is not clear."""
        dff = build_cell_library().cell("dff")
        derived = derive_access_from_blockages(dff, "D")
        assert "north" not in derived
        assert "west" in derived  # boundary side is always approachable

    def test_clear_pin_gets_all_directions(self):
        inv = build_cell_library().cell("inv")
        derived = derive_access_from_blockages(inv, "A")
        assert derived == frozenset({"north", "south", "east", "west"})

    def test_effective_access_property_mode(self):
        inv = build_cell_library().cell("inv")
        assert effective_access(inv, "A", "property") == frozenset({"west", "north"})

    def test_effective_access_derived_mode_ignores_property(self):
        """The paper's mismatch: a derived-mode tool ignores the property."""
        inv = build_cell_library().cell("inv")
        derived = effective_access(inv, "A", "derived")
        assert derived != inv.pin("A").props.access

    def test_property_mode_falls_back_when_absent(self):
        dff = build_cell_library().cell("dff")
        assert effective_access(dff, "D", "property") == derive_access_from_blockages(dff, "D")

    def test_bad_mode(self):
        with pytest.raises(ValueError):
            effective_access(build_cell_library().cell("inv"), "A", "telepathy")
