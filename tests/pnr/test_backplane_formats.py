"""Tests for P&R dialects, the backplane, and exchange formats."""

import pytest

from cadinterop.common.diagnostics import IssueLog, Severity
from cadinterop.common.geometry import Point, Rect
from cadinterop.pnr.backplane import convey, run_flow
from cadinterop.pnr.cells import CellLibrary
from cadinterop.pnr.dialects import (
    ALL_TOOLS,
    PnRDialect,
    TOOL_P,
    TOOL_Q,
    TOOL_R,
    feature_matrix,
    universally_supported,
)
from cadinterop.pnr.formats import def_like, lef_like, pdef_like
from cadinterop.pnr.samples import (
    build_bus_scenario,
    build_cell_library,
    build_floorplan,
    generate_design,
)
from cadinterop.pnr.tech import generic_two_layer_tech


@pytest.fixture(scope="module")
def tech():
    return generic_two_layer_tech()


@pytest.fixture(scope="module")
def library():
    return build_cell_library()


class TestDialects:
    def test_three_distinct_tools(self):
        assert len({t.name for t in ALL_TOOLS}) == 3
        modes = {t.pin_access_mode for t in ALL_TOOLS}
        assert modes == {"property", "derived"}
        conn = {t.connection_type_mode for t in ALL_TOOLS}
        assert conn == {"inline", "external-file", "unsupported"}

    def test_feature_matrix_shape(self):
        matrix = feature_matrix()
        assert "netrule:shield" in matrix
        assert matrix["netrule:shield"] == {"toolP": True, "toolQ": False, "toolR": False}

    def test_minimal_consistency_over_all_tools(self):
        """Paper: '(While there are groups of tools that support some
        commonality, there is minimal consistency over all tools)'."""
        universal = universally_supported()
        matrix = feature_matrix()
        assert len(universal) < len(matrix) / 2

    def test_bad_dialect_rejected(self):
        with pytest.raises(ValueError):
            PnRDialect("x", "psychic", "inline", frozenset(), frozenset(), frozenset())


class TestConvey:
    def test_toolP_conveys_everything(self, library):
        log = IssueLog()
        payload = convey(build_floorplan(), library, TOOL_P, log)
        assert payload.dropped == []
        assert payload.honored_rule_features == {"width", "spacing", "shield"}
        assert payload.external_connection_file is None
        # inline connection props delivered
        assert ("nand2", "Y") in payload.connection_properties

    def test_toolQ_derivation_mismatch_logged(self, library):
        log = IssueLog()
        convey(build_floorplan(), library, TOOL_Q, log)
        mismatches = [i for i in log if "derives access" in i.message]
        assert mismatches, "expected derived-vs-property access warnings"

    def test_toolQ_external_file(self, library):
        payload = convey(build_floorplan(), library, TOOL_Q)
        assert payload.external_connection_file is not None
        assert "dff CK must-connect" in payload.external_connection_file

    def test_toolR_drops_connection_props(self, library):
        log = IssueLog()
        payload = convey(build_floorplan(), library, TOOL_R, log)
        assert any(d.startswith("connection:") for d in payload.dropped)
        assert log.has_errors()

    def test_net_rule_degradation(self, library):
        payload_q = convey(build_floorplan(), library, TOOL_Q)
        rule = payload_q.net_rules["crit"]
        assert rule.width_tracks == 2  # width survives
        assert rule.spacing_tracks == 1 and not rule.shield  # dropped
        payload_r = convey(build_floorplan(), library, TOOL_R)
        rule_r = payload_r.net_rules["crit"]
        assert rule_r.width_tracks == 1 and not rule_r.shield

    def test_floorplan_feature_drops_logged(self, library):
        log = IssueLog()
        payload = convey(build_floorplan(), library, TOOL_Q, log)
        # toolQ has no literal-pin-location and no clock-spine.
        dropped_kinds = {d.split(":")[1] for d in payload.dropped if d.startswith("floorplan:")}
        assert "literal-pin-location" in dropped_kinds
        assert "clock-spine" in dropped_kinds

    def test_coverage_differs_per_tool(self, library):
        drops = {
            tool.name: len(convey(build_floorplan(), library, tool).dropped)
            for tool in ALL_TOOLS
        }
        assert drops["toolP"] < drops["toolQ"] <= drops["toolR"]


class TestRunFlow:
    def test_flow_results_reflect_dialect_gaps(self, tech, library):
        fp = build_floorplan()
        design, pads = generate_design(library, cells=12)
        results = {
            tool.name: run_flow(tech, fp, library, design, tool, pad_positions=pads)
            for tool in ALL_TOOLS
        }
        for result in results.values():
            assert result.routing.failed == []
        assert results["toolP"].routing.shield_nodes > 0
        assert results["toolQ"].routing.shield_nodes == 0

    def test_bus_scenario_coupling_cost(self, tech):
        fp, design, pads = build_bus_scenario()
        couplings = {}
        for tool in ALL_TOOLS:
            result = run_flow(tech, fp, CellLibrary("none"), design, tool, pad_positions=pads)
            couplings[tool.name] = result.parasitics.coupling_of("crit")
        assert couplings["toolP"] < couplings["toolQ"] < couplings["toolR"]


class TestLefLike:
    def test_roundtrip(self, library):
        text = lef_like.dump_library(library)
        loaded = lef_like.load_library(text)
        assert len(loaded) == len(library)
        nand = loaded.cell("nand2")
        original = library.cell("nand2")
        assert nand.pin("A").props.equivalent_group == "inputs"
        assert nand.pin("Y").props.multiple_connect
        assert nand.pin("A").props.access == original.pin("A").props.access
        dff = loaded.cell("dff")
        assert dff.pin("D").props.access is None  # stays derivable
        assert len(dff.blockages) == 1
        filler = loaded.cell("filler")
        assert filler.pin("VDD").props.connect_by_abutment
        assert filler.pin("VDD").use == "power"

    def test_bad_header(self):
        with pytest.raises(lef_like.LefFormatError):
            lef_like.load_library("CELL x 1 1 core stdcell\n")

    def test_unterminated_cell(self, library):
        text = lef_like.dump_library(library).replace("ENDCELL", "", 1)
        with pytest.raises(lef_like.LefFormatError):
            lef_like.load_library(text)


class TestDefLike:
    def test_roundtrip(self, tech, library):
        from cadinterop.pnr.placement import RowPlacer

        fp = build_floorplan()
        design, pads = generate_design(library, cells=8)
        RowPlacer(tech, fp, seed=3).place(design, pads)
        text = def_like.dump_design(design, fp.die)
        loaded, die = def_like.load_design(text, library)
        assert die == fp.die
        assert set(loaded.instances) == set(design.instances)
        assert loaded.nets == design.nets
        for name, instance in design.instances.items():
            assert loaded.instance(name).location == instance.location
            assert loaded.instance(name).orientation == instance.orientation

    def test_unplaced_instances(self, library):
        design, _pads = generate_design(library, cells=4)
        text = def_like.dump_design(design, Rect(0, 0, 10, 10))
        loaded, _die = def_like.load_design(text, library)
        assert not loaded.instance("u0").placed

    def test_missing_die(self, library):
        with pytest.raises(def_like.DefFormatError):
            def_like.load_design("DESIGN d\nEND DESIGN\n", library)


class TestPdefLike:
    def test_roundtrip(self):
        constraints = pdef_like.PlacementConstraints("top")
        constraints.add_cluster("fast", ["u1", "u2"])
        constraints.net_weights["crit"] = 5.0
        loaded = pdef_like.load(pdef_like.dump(constraints))
        assert loaded.design == "top"
        assert loaded.clusters == {"fast": ["u1", "u2"]}
        assert loaded.weight("crit") == 5.0
        assert loaded.weight("other") == 1.0

    def test_scope_is_placement_only(self):
        """PDEF-like cannot carry net rules or keepouts — by design."""
        constraints = pdef_like.PlacementConstraints("top")
        assert not hasattr(constraints, "net_rules")
        assert not hasattr(constraints, "keepouts")

    def test_duplicate_cluster(self):
        constraints = pdef_like.PlacementConstraints("top")
        constraints.add_cluster("a", [])
        with pytest.raises(ValueError):
            constraints.add_cluster("a", [])

    def test_bad_text(self):
        with pytest.raises(pdef_like.PdefFormatError):
            pdef_like.load("CLUSTER x\nEND\n")
