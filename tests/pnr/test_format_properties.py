"""Property-based round-trip tests for the P&R exchange formats."""

import pytest
from hypothesis import given, settings, strategies as st

from cadinterop.common.geometry import Orientation, Rect
from cadinterop.pnr.cells import (
    ACCESS_DIRECTIONS,
    Blockage,
    CellAbstract,
    CellLibrary,
    CellPin,
    ConnectionProps,
    PinShape,
)
from cadinterop.pnr.formats import lef_like, pdef_like
from cadinterop.hdl.synth.constraints import (
    ConstraintSet,
    DialectSdcLike,
)

names = st.from_regex(r"[a-zA-Z][a-zA-Z0-9_]{0,10}", fullmatch=True)


@st.composite
def rects(draw):
    x1 = draw(st.integers(0, 50))
    y1 = draw(st.integers(0, 50))
    width = draw(st.integers(1, 30))
    height = draw(st.integers(1, 30))
    return Rect(x1, y1, x1 + width, y1 + height)


@st.composite
def connection_props(draw):
    has_access = draw(st.booleans())
    access = (
        frozenset(draw(st.sets(st.sampled_from(ACCESS_DIRECTIONS), min_size=1)))
        if has_access
        else None
    )
    return ConnectionProps(
        access=access,
        multiple_connect=draw(st.booleans()),
        equivalent_group=draw(st.one_of(st.none(), names)),
        must_connect=draw(st.booleans()),
        connect_by_abutment=draw(st.booleans()),
    )


@st.composite
def cells(draw):
    pin_names = draw(st.lists(names, min_size=1, max_size=4, unique=True))
    pins = [
        CellPin(
            pin_name,
            [PinShape(draw(st.sampled_from(["M1", "M2"])), draw(rects()))],
            draw(connection_props()),
            use=draw(st.sampled_from(CellPin.USES)),
        )
        for pin_name in pin_names
    ]
    blockages = [
        Blockage(draw(st.sampled_from(["M1", "M2"])), draw(rects()))
        for _ in range(draw(st.integers(0, 2)))
    ]
    return CellAbstract(
        name=draw(names),
        width=draw(st.integers(1, 100)),
        height=draw(st.integers(1, 100)),
        site=draw(st.sampled_from(["core", "pad"])),
        kind=draw(st.sampled_from(CellAbstract.KINDS)),
        legal_orientations=tuple(
            draw(st.sets(st.sampled_from(list(Orientation)), min_size=1))
        ),
        pins=pins,
        blockages=blockages,
    )


class TestLefProperty:
    @given(cell_list=st.lists(cells(), min_size=1, max_size=3))
    @settings(max_examples=40, deadline=None)
    def test_library_roundtrip(self, cell_list):
        library = CellLibrary("randlib")
        seen = set()
        for cell in cell_list:
            if cell.name in seen:
                continue
            seen.add(cell.name)
            library.add(cell)

        loaded = lef_like.load_library(lef_like.dump_library(library))
        assert len(loaded) == len(library)
        for cell in library.cells():
            twin = loaded.cell(cell.name)
            assert (twin.width, twin.height) == (cell.width, cell.height)
            assert twin.site == cell.site and twin.kind == cell.kind
            assert set(twin.legal_orientations) == set(cell.legal_orientations)
            assert twin.pin_names() == cell.pin_names()
            for pin in cell.pins:
                other = twin.pin(pin.name)
                assert other.props.access == pin.props.access
                assert other.props.multiple_connect == pin.props.multiple_connect
                assert other.props.equivalent_group == pin.props.equivalent_group
                assert other.props.must_connect == pin.props.must_connect
                assert other.props.connect_by_abutment == pin.props.connect_by_abutment
                assert other.use == pin.use
                assert [s.rect for s in other.shapes] == [s.rect for s in pin.shapes]
            assert [b.rect for b in twin.blockages] == [b.rect for b in cell.blockages]


class TestPdefProperty:
    @given(
        clusters=st.dictionaries(names, st.lists(names, max_size=4), max_size=3),
        weights=st.dictionaries(
            names, st.floats(min_value=0.1, max_value=50, allow_nan=False), max_size=4
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip(self, clusters, weights):
        constraints = pdef_like.PlacementConstraints("rand")
        for name, members in clusters.items():
            constraints.add_cluster(name, members)
        constraints.net_weights.update(weights)
        loaded = pdef_like.load(pdef_like.dump(constraints))
        assert loaded.clusters == constraints.clusters
        assert loaded.net_weights == pytest.approx(constraints.net_weights)


class TestSdcProperty:
    @given(
        period=st.one_of(st.none(), st.floats(1, 100, allow_nan=False)),
        input_delays=st.dictionaries(names, st.floats(0, 10, allow_nan=False), max_size=3),
        max_fanout=st.one_of(st.none(), st.integers(1, 64)),
        dont_touch=st.lists(names, max_size=3, unique=True),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip(self, period, input_delays, max_fanout, dont_touch):
        constraints = ConstraintSet(
            clock_period=period,
            clock_port="clk" if period is not None else None,
            input_delays=input_delays,
            max_fanout=max_fanout,
            dont_touch=list(dont_touch),
        )
        dialect = DialectSdcLike()
        loaded = dialect.load(dialect.dump(constraints))
        assert loaded.clock_period == pytest.approx(period) if period else loaded.clock_period is None
        assert loaded.input_delays == pytest.approx(input_delays)
        assert loaded.max_fanout == max_fanout
        assert loaded.dont_touch == list(dont_touch)
