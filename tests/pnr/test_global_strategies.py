"""Tests for global-net strategy realization (rings, trunks, spines)."""

import pytest

from cadinterop.common.geometry import Point, Rect
from cadinterop.pnr.design import PnRDesign, pad_terminal
from cadinterop.pnr.floorplan import Floorplan, GlobalNetStrategy
from cadinterop.pnr.parasitics import extract
from cadinterop.pnr.routing import GridRouter, SHIELD
from cadinterop.pnr.tech import generic_two_layer_tech


@pytest.fixture()
def router():
    tech = generic_two_layer_tech()
    floorplan = Floorplan("g", Rect(0, 0, 300, 300))
    return GridRouter(tech, floorplan, {})


class TestRing:
    def test_ring_is_closed_loop(self, router):
        strategy = GlobalNetStrategy("VDD", "power", "ring", layer="M1", width=1)
        routed = router.realize_strategy(strategy)
        # A closed loop: every node has exactly two neighbors in the set.
        nodes = routed.nodes
        assert nodes
        for layer, ix, iy in nodes:
            neighbors = sum(
                (layer, ix + dx, iy + dy) in nodes
                for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1))
            )
            assert neighbors == 2, (ix, iy)

    def test_ring_width(self, router):
        thin = router.realize_strategy(
            GlobalNetStrategy("V1", "power", "ring", layer="M1", width=1)
        )
        router2 = GridRouter(generic_two_layer_tech(),
                             Floorplan("g", Rect(0, 0, 300, 300)), {})
        wide = router2.realize_strategy(
            GlobalNetStrategy("V2", "power", "ring", layer="M1", width=2)
        )
        assert len(wide.nodes) > len(thin.nodes)

    def test_ring_occupies(self, router):
        strategy = GlobalNetStrategy("VDD", "power", "ring", layer="M1", width=1)
        routed = router.realize_strategy(strategy)
        for node in routed.nodes:
            assert router.occupancy[node] == "VDD"


class TestTrunkAndSpine:
    def test_trunk_spans_width(self, router):
        strategy = GlobalNetStrategy("GND", "ground", "trunk", layer="M1", width=2)
        routed = router.realize_strategy(strategy)
        columns = {ix for _l, ix, _iy in routed.nodes}
        assert columns == set(range(router.cols))
        rows = {iy for _l, _ix, iy in routed.nodes}
        assert len(rows) == 2

    def test_spine_spans_height(self, router):
        strategy = GlobalNetStrategy("CLK", "clock", "spine", layer="M2", width=1)
        routed = router.realize_strategy(strategy)
        rows = {iy for _l, _ix, iy in routed.nodes}
        assert rows == set(range(router.rows))

    def test_shielded_spine_gets_shields(self, router):
        strategy = GlobalNetStrategy("CLK", "clock", "spine", layer="M2",
                                     width=1, shielded=True)
        router.realize_strategy(strategy)
        assert SHIELD in set(router.occupancy.values())

    def test_unknown_layer_rejected(self, router):
        strategy = GlobalNetStrategy("X", "power", "ring", layer="M9", width=1)
        with pytest.raises(KeyError):
            router.realize_strategy(strategy)


class TestInteractionWithSignalRouting:
    def test_signals_detour_around_trunk(self):
        tech = generic_two_layer_tech()
        floorplan = Floorplan("g", Rect(0, 0, 300, 300))
        design = PnRDesign("d")
        design.add_net("s", [pad_terminal("w"), pad_terminal("e")])
        pads = {"w": Point(0, 150), "e": Point(295, 150)}

        bare = GridRouter(tech, floorplan, pads)
        baseline = bare.route_design(design).routed["s"].wirelength_tracks

        router = GridRouter(tech, floorplan, pads)
        # A horizontal power trunk on M1 sits exactly on the signal's row:
        # the route must jog around it on M2 and come back.
        router.realize_strategy(
            GlobalNetStrategy("VDD", "power", "trunk", layer="M1", width=2)
        )
        detoured = router.route_design(design)
        assert detoured.failed == []
        routed = detoured.routed["s"]
        assert routed.wirelength_tracks + routed.vias > baseline
        # The trunk's nodes were never stolen by the signal.
        vdd_nodes = {n for n, o in router.occupancy.items() if o == "VDD"}
        assert not (routed.nodes & vdd_nodes)

    def test_spine_on_wrong_direction_layer_walls_off_die(self):
        """A vertical spine on the horizontal layer cannot be crossed in a
        two-layer HV scheme — the router correctly reports failure rather
        than violating the power structure."""
        tech = generic_two_layer_tech()
        floorplan = Floorplan("g", Rect(0, 0, 300, 300))
        design = PnRDesign("d")
        design.add_net("s", [pad_terminal("w"), pad_terminal("e")])
        pads = {"w": Point(0, 150), "e": Point(295, 150)}
        router = GridRouter(tech, floorplan, pads)
        router.realize_strategy(
            GlobalNetStrategy("VDD", "power", "spine", layer="M1", width=2)
        )
        result = router.route_design(design)
        assert result.failed == ["s"]

    def test_shielded_clock_spine_kills_coupling(self):
        tech = generic_two_layer_tech()
        floorplan = Floorplan("g", Rect(0, 0, 300, 300))
        design = PnRDesign("d")
        design.add_net("v", [pad_terminal("n"), pad_terminal("s")])
        middle_col = (300 // tech.pitch) // 2
        x = (middle_col + 2) * tech.pitch  # two tracks from the spine
        pads = {"n": Point(x, 0), "s": Point(x, 295)}

        def run(shielded):
            router = GridRouter(tech, floorplan, pads)
            router.realize_strategy(
                GlobalNetStrategy("CLK", "clock", "spine", layer="M2",
                                  width=1, shielded=shielded)
            )
            result = router.route_design(design)
            assert result.failed == []
            report = extract(tech, result, router.occupancy)
            return report.coupling_of("v")

        assert run(shielded=True) < run(shielded=False)
