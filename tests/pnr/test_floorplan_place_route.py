"""Tests for floorplanning, placement, routing, and parasitics."""

import pytest

from cadinterop.common.geometry import Point, Rect
from cadinterop.pnr.cells import CellLibrary
from cadinterop.pnr.design import PnRDesign, PnRInstance, inst_terminal, pad_terminal
from cadinterop.pnr.floorplan import (
    Block,
    Floorplan,
    GlobalNetStrategy,
    Keepout,
    NetRule,
    PinConstraint,
)
from cadinterop.pnr.parasitics import extract
from cadinterop.pnr.placement import RowPlacer, hpwl
from cadinterop.pnr.routing import GridRouter, SHIELD
from cadinterop.pnr.samples import (
    build_bus_scenario,
    build_cell_library,
    build_floorplan,
    generate_design,
)
from cadinterop.pnr.tech import generic_two_layer_tech


@pytest.fixture(scope="module")
def tech():
    return generic_two_layer_tech()


@pytest.fixture(scope="module")
def library():
    return build_cell_library()


class TestFloorplan:
    def test_block_dimensions_from_area_aspect(self):
        block = Block("b", area=400, aspect_ratio=4.0)
        assert block.width == 40 and block.height == 10

    def test_unplaced_block_has_no_outline(self):
        with pytest.raises(ValueError):
            Block("b", area=100).outline()

    def test_validate_clean(self):
        assert build_floorplan().validate() == []

    def test_overlapping_blocks_flagged(self):
        fp = Floorplan("f", Rect(0, 0, 100, 100))
        fp.add_block(Block("a", area=400, location=Point(0, 0)))
        fp.add_block(Block("b", area=400, location=Point(10, 10)))
        assert any("overlap" in p for p in fp.validate())

    def test_block_outside_die_flagged(self):
        fp = Floorplan("f", Rect(0, 0, 30, 30))
        fp.add_block(Block("a", area=3600, location=Point(0, 0)))
        assert any("past the die" in p for p in fp.validate())

    def test_literal_pin_offset_validated(self):
        fp = Floorplan("f", Rect(0, 0, 100, 100))
        fp.add_pin_constraint(PinConstraint("p", "north", offset=500))
        assert any("outside" in p for p in fp.validate())

    def test_pin_location_resolution(self):
        fp = Floorplan("f", Rect(0, 0, 100, 100))
        literal = PinConstraint("a", "west", offset=30)
        general = PinConstraint("b", "north")
        assert fp.pin_location(literal) == Point(0, 30)
        assert fp.pin_location(general) == Point(50, 100)

    def test_duplicate_rules_rejected(self):
        fp = Floorplan("f", Rect(0, 0, 100, 100))
        fp.add_net_rule(NetRule("n"))
        with pytest.raises(ValueError):
            fp.add_net_rule(NetRule("n"))

    def test_strategy_validation(self):
        with pytest.raises(ValueError):
            GlobalNetStrategy("x", "signal", "ring", "M1", 2)
        with pytest.raises(ValueError):
            GlobalNetStrategy("x", "power", "mesh", "M1", 2)


class TestPlacement:
    def test_all_cells_placed_in_die(self, tech, library):
        fp = build_floorplan()
        design, pads = generate_design(library, cells=18)
        result = RowPlacer(tech, fp, seed=3).place(design, pads)
        assert result.placed == 18
        for instance in design.instances.values():
            assert fp.die.contains_rect(instance.outline())

    def test_keepouts_respected(self, tech, library):
        fp = build_floorplan()
        design, pads = generate_design(library, cells=18)
        RowPlacer(tech, fp, seed=3).place(design, pads)
        keepout = fp.keepouts[0].rect  # placement keepout over the RAM
        for instance in design.instances.values():
            assert not instance.outline().intersects(keepout)

    def test_insufficient_room_raises(self, tech, library):
        fp = Floorplan("tiny", Rect(0, 0, 40, 40))
        design, pads = generate_design(library, cells=18)
        with pytest.raises(ValueError):
            RowPlacer(tech, fp).place(design, pads)

    def test_swap_improvement_never_worsens(self, tech, library):
        fp = build_floorplan()
        design, pads = generate_design(library, cells=18)
        placer = RowPlacer(tech, fp, seed=3)
        result_no_swaps = placer.place(design, pads, swap_passes=0)
        design2, pads2 = generate_design(library, cells=18)
        result_swaps = RowPlacer(tech, fp, seed=3).place(design2, pads2, swap_passes=3)
        assert result_swaps.hpwl <= result_no_swaps.hpwl

    def test_hpwl_zero_without_placement(self, library):
        design, pads = generate_design(library, cells=4)
        assert hpwl(design) == 0


class TestRouting:
    def route_small(self, tech, library, **kwargs):
        fp = build_floorplan()
        design, pads = generate_design(library, cells=12)
        RowPlacer(tech, fp, seed=3).place(design, pads)
        router = GridRouter(tech, fp, pads)
        return design, router, router.route_design(design, **kwargs)

    def test_full_design_routes(self, tech, library):
        _design, _router, result = self.route_small(tech, library)
        assert result.failed == []
        assert result.success_rate == 1.0
        assert result.total_wirelength > 0

    def test_routes_are_connected_paths(self, tech, library):
        design, router, result = self.route_small(tech, library)
        for net, routed in result.routed.items():
            if not routed.nodes:
                continue
            # Every net's nodes form one connected component under
            # grid/via adjacency.
            nodes = set(routed.nodes)
            start = next(iter(nodes))
            seen = {start}
            frontier = [start]
            while frontier:
                node = frontier.pop()
                for neighbor, _cost in router._neighbors(node):
                    if neighbor in nodes and neighbor not in seen:
                        seen.add(neighbor)
                        frontier.append(neighbor)
            assert seen == nodes, f"net {net} is fragmented"

    def test_nets_do_not_share_nodes(self, tech, library):
        _design, router, result = self.route_small(tech, library)
        owners = {}
        for net, routed in result.routed.items():
            for node in routed.nodes:
                assert owners.setdefault(node, net) == net

    def test_routing_keepout_avoided(self, tech, library):
        fp = build_floorplan()
        design, pads = generate_design(library, cells=12)
        RowPlacer(tech, fp, seed=3).place(design, pads)
        router = GridRouter(tech, fp, pads)
        result = router.route_design(design)
        blocked = router._blocked
        for routed in result.routed.values():
            assert not (routed.nodes & blocked)

    def test_shields_marked(self, tech):
        fp, design, pads = build_bus_scenario()
        router = GridRouter(tech, fp, pads)
        result = router.route_design(design)
        assert result.shield_nodes > 0
        assert SHIELD in set(router.occupancy.values())

    def test_spacing_rule_enforced_symmetrically(self, tech):
        """No foreign wire within the rule's spacing of the victim.

        Terminal (pad/pin) nodes are exempt: a pin fixed by the floorplan
        inside the clearance zone is the floorplan's decision, and the
        router may only enter it to escape.
        """
        fp, design, pads = build_bus_scenario()
        router = GridRouter(tech, fp, pads)
        result = router.route_design(design)
        terminal_nodes = set()
        for net, terminals in design.nets.items():
            for terminal in terminals:
                terminal_nodes.update(router._terminal_nodes(design, terminal))
        crit_nodes = result.routed["crit"].nodes
        margin = 2  # width 2 + spacing 2 -> (2-1)+(2-1)
        for layer, ix, iy in crit_nodes:
            for d in range(1, margin + 1):
                for probe in ((layer, ix, iy + d), (layer, ix, iy - d)):
                    if probe in terminal_nodes:
                        continue
                    owner = router.occupancy.get(probe)
                    assert owner in (None, "crit", SHIELD), (
                        f"{owner} within {d} tracks of crit"
                    )


class TestParasitics:
    def test_topology_control_ordering(self, tech):
        """Paper's claim: spacing+shield < width-only < uncontrolled."""
        couplings = {}
        for features in (
            frozenset({"width", "spacing", "shield"}),
            frozenset({"width"}),
            frozenset(),
        ):
            fp, design, pads = build_bus_scenario()
            router = GridRouter(tech, fp, pads)
            result = router.route_design(design, honored_features=set(features))
            report = extract(tech, result, router.occupancy)
            couplings[features] = report.coupling_of("crit")
        full = couplings[frozenset({"width", "spacing", "shield"})]
        width_only = couplings[frozenset({"width"})]
        none = couplings[frozenset()]
        assert full < width_only < none

    def test_area_cap_tracks_wirelength(self, tech):
        fp, design, pads = build_bus_scenario()
        router = GridRouter(tech, fp, pads)
        result = router.route_design(design)
        report = extract(tech, result, router.occupancy)
        crit = report.net("crit")
        assert crit.area_cap > 0
        assert crit.total_cap >= crit.area_cap

    def test_coupling_symmetloss_attribution(self, tech):
        fp, design, pads = build_bus_scenario()
        router = GridRouter(tech, fp, pads)
        result = router.route_design(design, honored_features=set())
        report = extract(tech, result, router.occupancy)
        worst = report.net("crit").worst_aggressor
        assert worst is not None and worst[0] == "aggr0"
