"""Tests for the command-line interface."""

import pytest

from cadinterop.cli import main

RACY = """
module race (clk);
  input clk;
  reg clk, b, d, flag;
  wire a;
  assign a = b;
  always @(posedge clk) if (a != d) flag = 1; else flag = 0;
  always @(posedge clk) b = d;
  initial begin d = 1'b1; b = 1'b0; flag = 1'b0; clk = 1'b0; #5 clk = 1'b1; end
endmodule
"""

CLEAN_FF = """
module ff (clk, d, q);
  input clk, d; output q; reg q;
  always @(posedge clk) q <= d;
endmodule
"""


class TestChecklist:
    def test_default_scenario(self, capsys):
        assert main(["checklist"]) == 0
        out = capsys.readouterr().out
        assert "full-asic" in out and "[ ]" in out

    def test_named_scenario(self, capsys):
        assert main(["checklist", "--scenario", "netlist-handoff"]) == 0
        assert "netlist-handoff" in capsys.readouterr().out

    def test_unknown_scenario(self, capsys):
        assert main(["checklist", "--scenario", "nope"]) == 2
        assert "available" in capsys.readouterr().err


class TestMethodology:
    def test_stats_printed(self, capsys):
        assert main(["methodology"]) == 0
        out = capsys.readouterr().out
        assert "tasks        200" in out
        assert "scenario pruning" in out


class TestRaces:
    def test_racy_file_exits_one(self, tmp_path, capsys):
        path = tmp_path / "race.v"
        path.write_text(RACY)
        assert main(["races", str(path), "--observe", "flag", "--until", "100"]) == 1
        assert "RACE" in capsys.readouterr().out

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "ff.v"
        path.write_text(CLEAN_FF + "\n")
        # No stimulus: trivially deterministic.
        assert main(["races", str(path), "--until", "100"]) == 0
        assert "race-free" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["races", "/nonexistent.v"]) == 2

    def test_parse_error(self, tmp_path, capsys):
        path = tmp_path / "bad.v"
        path.write_text("module ???")
        assert main(["races", str(path)]) == 2
        assert "parse error" in capsys.readouterr().err


class TestSubsets:
    def test_portable_module(self, tmp_path, capsys):
        path = tmp_path / "ff.v"
        path.write_text(CLEAN_FF)
        assert main(["subsets", str(path)]) == 0
        out = capsys.readouterr().out
        assert "portable across all vendors: True" in out

    def test_unportable_module(self, tmp_path, capsys):
        path = tmp_path / "dly.v"
        path.write_text(
            "module dly (a, y); input a; output y; assign #5 y = ~a; endmodule"
        )
        assert main(["subsets", str(path)]) == 1
        assert "rejects" in capsys.readouterr().out


class TestNaming:
    def test_clean_names(self, capsys):
        assert main(["naming", "clk", "rst_n"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_violations(self, capsys):
        assert main(["naming", "cntr_reset1", "cntr_reset2", "in"]) == 1
        out = capsys.readouterr().out
        assert "alias" in out and "keyword" in out

    def test_max_length_flag(self, capsys):
        assert main(["naming", "--max-length", "32", "a_rather_long_name"]) == 0
