"""Tests for the command-line interface."""

import pytest

from cadinterop.cli import main

RACY = """
module race (clk);
  input clk;
  reg clk, b, d, flag;
  wire a;
  assign a = b;
  always @(posedge clk) if (a != d) flag = 1; else flag = 0;
  always @(posedge clk) b = d;
  initial begin d = 1'b1; b = 1'b0; flag = 1'b0; clk = 1'b0; #5 clk = 1'b1; end
endmodule
"""

CLEAN_FF = """
module ff (clk, d, q);
  input clk, d; output q; reg q;
  always @(posedge clk) q <= d;
endmodule
"""


class TestChecklist:
    def test_default_scenario(self, capsys):
        assert main(["checklist"]) == 0
        out = capsys.readouterr().out
        assert "full-asic" in out and "[ ]" in out

    def test_named_scenario(self, capsys):
        assert main(["checklist", "--scenario", "netlist-handoff"]) == 0
        assert "netlist-handoff" in capsys.readouterr().out

    def test_unknown_scenario(self, capsys):
        assert main(["checklist", "--scenario", "nope"]) == 2
        assert "available" in capsys.readouterr().err


class TestMethodology:
    def test_stats_printed(self, capsys):
        assert main(["methodology"]) == 0
        out = capsys.readouterr().out
        assert "tasks        200" in out
        assert "scenario pruning" in out


class TestRaces:
    def test_racy_file_exits_one(self, tmp_path, capsys):
        path = tmp_path / "race.v"
        path.write_text(RACY)
        assert main(["races", str(path), "--observe", "flag", "--until", "100"]) == 1
        assert "RACE" in capsys.readouterr().out

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "ff.v"
        path.write_text(CLEAN_FF + "\n")
        # No stimulus: trivially deterministic.
        assert main(["races", str(path), "--until", "100"]) == 0
        assert "race-free" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["races", "/nonexistent.v"]) == 2

    def test_parse_error(self, tmp_path, capsys):
        path = tmp_path / "bad.v"
        path.write_text("module ???")
        assert main(["races", str(path)]) == 2
        assert "parse error" in capsys.readouterr().err


class TestSubsets:
    def test_portable_module(self, tmp_path, capsys):
        path = tmp_path / "ff.v"
        path.write_text(CLEAN_FF)
        assert main(["subsets", str(path)]) == 0
        out = capsys.readouterr().out
        assert "portable across all vendors: True" in out

    def test_unportable_module(self, tmp_path, capsys):
        path = tmp_path / "dly.v"
        path.write_text(
            "module dly (a, y); input a; output y; assign #5 y = ~a; endmodule"
        )
        assert main(["subsets", str(path)]) == 1
        assert "rejects" in capsys.readouterr().out


class TestNaming:
    def test_clean_names(self, capsys):
        assert main(["naming", "clk", "rst_n"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_violations(self, capsys):
        assert main(["naming", "cntr_reset1", "cntr_reset2", "in"]) == 1
        out = capsys.readouterr().out
        assert "alias" in out and "keyword" in out

    def test_max_length_flag(self, capsys):
        assert main(["naming", "--max-length", "32", "a_rather_long_name"]) == 0


class TestMigrateBatch:
    def write_vl(self, tmp_path, name="mixed1"):
        from cadinterop.schematic import io_vl
        from cadinterop.schematic.samples import build_sample_schematic, build_vl_libraries

        cell = build_sample_schematic(build_vl_libraries())
        cell.name = name
        path = tmp_path / f"{name}.vl"
        path.write_text(io_vl.dump_schematic(cell))
        return path

    def test_generated_corpus_runs_clean(self, capsys):
        assert main(["migrate-batch", "--generate", "3"]) == 0
        out = capsys.readouterr().out
        assert "3 designs" in out and "3 migrated" in out and "3/3 clean" in out

    def test_cache_dir_makes_second_run_warm(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["migrate-batch", "--generate", "4", "--cache-dir", cache]) == 0
        assert "4 migrated, 0 from cache" in capsys.readouterr().out
        assert main(["migrate-batch", "--generate", "4", "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "0 migrated, 4 from cache" in out and "4 hits" in out

    def test_vl_file_and_directory_inputs(self, tmp_path, capsys):
        self.write_vl(tmp_path, "alpha")
        self.write_vl(tmp_path, "beta")
        assert main(["migrate-batch", str(tmp_path)]) == 0
        assert "2 designs" in capsys.readouterr().out
        assert main(["migrate-batch", str(tmp_path / "alpha.vl")]) == 0
        assert "1 designs" in capsys.readouterr().out

    def test_profile_flag_prints_stage_table(self, capsys):
        assert main(["migrate-batch", "--generate", "2", "--profile", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "verification" in out and "farm:digest" in out
        assert "gen000" in out  # per-design rows

    def test_out_writes_translated_designs(self, tmp_path, capsys):
        out_dir = tmp_path / "out"
        self.write_vl(tmp_path, "alpha")
        assert main(["migrate-batch", str(tmp_path / "alpha.vl"),
                     "--out", str(out_dir)]) == 0
        assert (out_dir / "alpha.cd").exists()
        assert "wrote 1 translated" in capsys.readouterr().out

    def test_missing_path_is_an_error(self, tmp_path, capsys):
        assert main(["migrate-batch", str(tmp_path / "nope.vl")]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_empty_directory_is_an_error(self, tmp_path, capsys):
        assert main(["migrate-batch", str(tmp_path)]) == 2
        assert "no .vl schematics" in capsys.readouterr().err

    def test_no_inputs_is_an_error(self, capsys):
        assert main(["migrate-batch"]) == 2
        assert "nothing to migrate" in capsys.readouterr().err

    def test_nonpositive_jobs_is_an_error(self, capsys):
        assert main(["migrate-batch", "--generate", "1", "--jobs", "0"]) == 2
        assert "--jobs must be >= 1" in capsys.readouterr().err


class TestTrace:
    def test_trace_migrate_batch_prints_tree_and_stats(self, capsys):
        assert main(["trace", "migrate-batch", "--generate", "2"]) == 0
        out = capsys.readouterr().out
        assert "cli:migrate-batch" in out
        assert "farm:run" in out and "migrate:verification" in out
        assert "metric" in out and "farm.designs.migrated" in out

    def test_trace_writes_valid_files(self, tmp_path, capsys):
        from cadinterop.obs import read_trace, validate_trace

        trace_file = tmp_path / "t.jsonl"
        metrics_file = tmp_path / "m.json"
        assert main(["trace", "--trace-out", str(trace_file),
                     "--metrics-out", str(metrics_file),
                     "migrate-batch", "--generate", "2", "--jobs", "2"]) == 0
        capsys.readouterr()
        assert validate_trace(trace_file) == []
        trace = read_trace(trace_file)
        names = [s["name"] for s in trace["spans"]]
        assert "cli:migrate-batch" in names and "farm:run" in names
        import json

        metrics = json.loads(metrics_file.read_text())
        assert metrics["farm.designs.migrated"]["value"] == 2

    def test_trace_disables_globals_afterwards(self, capsys):
        from cadinterop.obs import get_metrics, get_tracer

        assert main(["trace", "migrate-batch", "--generate", "1"]) == 0
        capsys.readouterr()
        assert not get_tracer().enabled and not get_metrics().enabled

    def test_trace_propagates_wrapped_exit_code(self, capsys):
        assert main(["trace", "migrate-batch"]) == 2
        assert "nothing to migrate" in capsys.readouterr().err

    def test_trace_without_a_command_is_an_error(self, capsys):
        assert main(["trace"]) == 2
        assert "give a cadinterop command" in capsys.readouterr().err

    def test_trace_cannot_wrap_itself(self, capsys):
        assert main(["trace", "trace", "migrate-batch"]) == 2
        assert "cannot wrap" in capsys.readouterr().err

    def test_other_commands_traceable(self, capsys):
        assert main(["trace", "naming", "clk", "rst"]) == 0
        out = capsys.readouterr().out
        assert "cli:naming" in out and "2 name(s) clean" in out


class TestStats:
    def test_stats_renders_a_written_trace(self, tmp_path, capsys):
        trace_file = tmp_path / "t.jsonl"
        assert main(["trace", "--trace-out", str(trace_file),
                     "migrate-batch", "--generate", "2"]) == 0
        capsys.readouterr()
        assert main(["stats", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "trace " in out and "farm:run" in out and "span" in out

    def test_stats_missing_file_is_an_error(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read" in capsys.readouterr().err


class TestMigrateBatchObservability:
    def test_trace_out_flag_enables_and_writes(self, tmp_path, capsys):
        from cadinterop.obs import get_tracer, read_trace, validate_trace

        trace_file = tmp_path / "t.jsonl"
        assert main(["migrate-batch", "--generate", "2",
                     "--trace-out", str(trace_file)]) == 0
        assert "trace written" in capsys.readouterr().out
        assert not get_tracer().enabled  # torn down after the run
        assert validate_trace(trace_file) == []
        names = [s["name"] for s in read_trace(trace_file)["spans"]]
        assert "farm:run" in names and "migrate" in names

    def test_metrics_out_flag_writes_snapshot(self, tmp_path, capsys):
        import json

        from cadinterop.obs import get_metrics

        metrics_file = tmp_path / "m.json"
        assert main(["migrate-batch", "--generate", "2",
                     "--metrics-out", str(metrics_file)]) == 0
        assert "metrics written" in capsys.readouterr().out
        assert not get_metrics().enabled
        snapshot = json.loads(metrics_file.read_text())
        assert snapshot["farm.designs.migrated"]["value"] == 2
        assert snapshot["stage.seconds[verification]"]["count"] == 2

    def test_lineage_out_writes_v2_trace_with_linked_records(self, tmp_path, capsys):
        from cadinterop.obs import get_lineage, read_trace, validate_trace

        lineage_file = tmp_path / "lineage.jsonl"
        assert main(["migrate-batch", "--generate", "4",
                     "--lineage-out", str(lineage_file)]) == 0
        out = capsys.readouterr().out
        assert "lineage trace written" in out
        assert "lineage:" in out and "losses" in out  # loss summary printed
        assert not get_lineage().enabled  # torn down after the run
        assert validate_trace(lineage_file) == []
        trace = read_trace(lineage_file)
        assert trace["meta"]["format"] == 2
        assert trace["lineage"]
        # Acceptance: every lineage record resolves to a span in this file.
        span_ids = {s["span_id"] for s in trace["spans"]}
        assert all(r["span_id"] in span_ids for r in trace["lineage"])

    def test_lineage_out_can_share_the_trace_file(self, tmp_path, capsys):
        from cadinterop.obs import read_trace

        shared = tmp_path / "t.jsonl"
        assert main(["migrate-batch", "--generate", "2",
                     "--trace-out", str(shared),
                     "--lineage-out", str(shared)]) == 0
        out = capsys.readouterr().out
        assert out.count(str(shared)) == 1  # written once, not twice
        assert read_trace(shared)["lineage"]

    def test_generated_corpus_loss_matches_issue_totals(self, tmp_path, capsys):
        # Acceptance criterion: the audited approximation count for the
        # 8-design corpus equals the SCALING snap warnings an uninstrumented
        # run of the same corpus logs.
        from cadinterop.common.diagnostics import Category, Severity
        from cadinterop.obs import read_trace
        from cadinterop.schematic.migrate import Migrator
        from cadinterop.schematic.samples import (
            build_sample_plan,
            build_vl_libraries,
            generate_chain_schematic,
        )

        libraries = build_vl_libraries()
        plan = build_sample_plan(source_libraries=libraries)
        shapes = [(1, 2, 3, 0), (2, 2, 4, 1), (1, 3, 5, 0), (2, 4, 4, 2)]
        expected = 0
        for index in range(8):
            pages, chains, stages, offgrid = shapes[index % len(shapes)]
            cell = generate_chain_schematic(
                libraries, pages=pages, chains_per_page=chains, stages=stages,
                seed=index, offgrid_labels=offgrid,
            )
            result = Migrator(plan).migrate(cell)
            expected += sum(
                1 for issue in result.log
                if issue.category is Category.SCALING
                and issue.severity is Severity.WARNING
            )
        assert expected > 0  # the corpus is intentionally lossy

        lineage_file = tmp_path / "l.jsonl"
        assert main(["migrate-batch", "--generate", "8",
                     "--lineage-out", str(lineage_file)]) == 0
        capsys.readouterr()
        records = read_trace(lineage_file)["lineage"]
        approximated = [r for r in records if r["verb"] == "approximated"]
        assert len(approximated) == expected
        assert all(r["stage"] == "scaling" for r in approximated)


class TestAudit:
    def write_lineage_trace(self, tmp_path, name="l.jsonl", generate="4"):
        path = tmp_path / name
        assert main(["migrate-batch", "--generate", generate,
                     "--lineage-out", str(path)]) == 0
        return path

    def test_audit_renders_loss_matrix(self, tmp_path, capsys):
        path = self.write_lineage_trace(tmp_path)
        capsys.readouterr()
        assert main(["audit", str(path)]) == 0
        out = capsys.readouterr().out
        assert "lineage:" in out and "losses" in out
        assert "stage" in out and "scaling" in out and "replacement" in out
        assert "dialect" in out and "top lossy designs" in out

    def test_audit_json_output(self, tmp_path, capsys):
        import json

        path = self.write_lineage_trace(tmp_path)
        capsys.readouterr()
        assert main(["audit", "--json", str(path)]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["total"] > 0
        assert data["losses"] == data["by_verb"]["approximated"] + \
            data["by_verb"]["dropped"]
        assert "scaling" in data["matrix"]

    def test_audit_merges_globbed_traces(self, tmp_path, capsys):
        import json

        first = self.write_lineage_trace(tmp_path, "a.jsonl", generate="2")
        self.write_lineage_trace(tmp_path, "b.jsonl", generate="2")
        capsys.readouterr()
        assert main(["audit", "--json", str(first)]) == 0
        single = json.loads(capsys.readouterr().out)
        assert main(["audit", "--json", str(tmp_path / "*.jsonl")]) == 0
        merged = json.loads(capsys.readouterr().out)
        assert merged["total"] == 2 * single["total"]

    def test_audit_missing_file_is_an_error(self, tmp_path, capsys):
        assert main(["audit", str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_audit_of_lineage_free_trace(self, tmp_path, capsys):
        trace_file = tmp_path / "t.jsonl"
        assert main(["trace", "--trace-out", str(trace_file),
                     "naming", "clk"]) == 0
        capsys.readouterr()
        assert main(["audit", str(trace_file)]) == 0
        assert "(no lineage records)" in capsys.readouterr().out


class TestStatsMultiFile:
    def write_trace(self, tmp_path, name, generate="2"):
        path = tmp_path / name
        assert main(["trace", "--trace-out", str(path),
                     "migrate-batch", "--generate", generate]) == 0
        return path

    def test_stats_merges_multiple_traces(self, tmp_path, capsys):
        import re

        a = self.write_trace(tmp_path, "a.jsonl")
        b = self.write_trace(tmp_path, "b.jsonl", generate="3")
        capsys.readouterr()
        assert main(["stats", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        # Both trace ids are announced and the counters add up (2 + 3).
        assert out.count("trace ") >= 2
        migrated = re.search(r"farm\.designs\.migrated\s+counter\s+(\d+)", out)
        assert migrated and int(migrated.group(1)) == 5
        # The span tree is a single-file affair; merged views stay flat.
        assert "└─" not in out

    def test_stats_accepts_globs(self, tmp_path, capsys):
        self.write_trace(tmp_path, "a.jsonl")
        self.write_trace(tmp_path, "b.jsonl")
        capsys.readouterr()
        assert main(["stats", str(tmp_path / "*.jsonl")]) == 0
        assert capsys.readouterr().out.count("trace ") >= 2

    def test_stats_single_file_still_prints_tree(self, tmp_path, capsys):
        a = self.write_trace(tmp_path, "a.jsonl")
        capsys.readouterr()
        assert main(["stats", str(a)]) == 0
        assert "└─" in capsys.readouterr().out
