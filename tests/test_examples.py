"""The examples are part of the product: run each one and check its story."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    return completed.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "clean migration     : True" in out
        assert "fifo" in out and "lifo" in out
        assert "toolP" in out and "toolR" in out
        assert "checklist" in out

    def test_exar_migration(self, tmp_path):
        out = run_example("exar_migration.py", str(tmp_path))
        assert "EQUIVALENT" in out
        assert "target system reread OK" in out
        assert "FAIL" not in out.replace("NOT EQUIVALENT", "")
        # Files really landed on disk in both formats.
        assert (tmp_path / "mixed1.vl").exists()
        assert (tmp_path / "mixed1.cd").exists()

    def test_simulator_portability(self):
        out = run_example("simulator_portability.py")
        assert "RACE" in out
        assert "pc8-like refused" in out
        assert "drift: True" in out and "drift: False" in out
        assert "portable (intersection)" in out

    def test_pnr_backplane(self):
        out = run_example("pnr_backplane.py")
        assert "feature support matrix" in out
        assert "dropped" in out
        assert "coupling" in out

    def test_tapeout_workflow(self, tmp_path):
        out = run_example("tapeout_workflow.py", str(tmp_path))
        assert "tapeout: succeeded" in out
        assert "notification: data-changed" in out
        assert "r1 by bob" in out
        assert "bottleneck" in out

    def test_methodology_audit(self):
        out = run_example("methodology_audit.py")
        assert "200 tasks" in out
        assert "scenario pruning" in out
        assert "improved: True" in out
        assert "[ ]" in out

    def test_rtl_to_layout(self):
        out = run_example("rtl_to_layout.py")
        assert "functional closure: PASS (8/8 vectors)" in out
        assert "hand-off clean: True" in out

    def test_farm_migration(self, tmp_path):
        out = run_example("farm_migration.py", str(tmp_path))
        assert "cold run" in out and "12 migrated" in out
        assert "12 from cache" in out  # the warm run
        assert "re-migrated only ['corpus05']" in out
        assert "verification" in out  # stage profile table printed
        assert (tmp_path / "migration-cache").is_dir()
