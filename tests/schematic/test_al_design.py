"""Tests for design-level a/L callbacks (whole-hierarchy access)."""

import pytest

from cadinterop.common.diagnostics import IssueLog
from cadinterop.schematic.al import ALError, run_design_callback
from cadinterop.schematic.migrate import Migrator
from cadinterop.schematic.propertymap import DesignCallbackRule
from cadinterop.schematic.samples import (
    build_sample_plan,
    build_sample_schematic,
    build_vl_libraries,
)


@pytest.fixture()
def sample():
    return build_sample_schematic(build_vl_libraries())


class TestDesignNavigation:
    def test_design_name_and_pages(self, sample):
        assert run_design_callback("(design-name design)", sample) == "mixed1"
        assert run_design_callback("(length (pages design))", sample) == 2
        assert run_design_callback(
            "(map page-number (pages design))", sample
        ) == [1, 2]

    def test_all_instances(self, sample):
        names = run_design_callback(
            "(map object-name (all-instances design))", sample
        )
        assert set(names) == {"U1", "U2", "U3", "R1", "G1", "M1"}

    def test_page_instances(self, sample):
        count = run_design_callback(
            "(length (page-instances (car (pages design))))", sample
        )
        assert count == 4  # U1, U2, R1, G1 on page 1

    def test_find_instance(self, sample):
        assert run_design_callback(
            '(object-name (find-instance design "M1"))', sample
        ) == "M1"
        assert run_design_callback(
            '(find-instance design "GHOST")', sample
        ) is None

    def test_instance_symbol_queries(self, sample):
        assert run_design_callback(
            '(instance-symbol (find-instance design "R1"))', sample
        ) == "res"
        assert run_design_callback(
            '(instance-library (find-instance design "R1"))', sample
        ) == "vl_prims"

    def test_wire_labels(self, sample):
        labels = run_design_callback(
            "(wire-labels (car (pages design)))", sample
        )
        assert "N1" in labels and "A<0:15>" in labels


class TestDesignMutation:
    def test_hierarchy_wide_property_edit(self, sample):
        """The paper's claim: a user can interact with the entire design
        hierarchy during migration."""
        run_design_callback(
            """
            (foreach inst (all-instances design)
              (set-prop! inst "touched" 1))
            """,
            sample,
        )
        for _page, instance in sample.all_instances():
            assert instance.properties.get("touched") == 1

    def test_conditional_rename_across_pages(self, sample):
        run_design_callback(
            """
            (foreach inst (all-instances design)
              (if (has-prop? inst "wl")
                  (rename-prop! inst "wl" "wl_legacy")))
            """,
            sample,
        )
        _page, m1 = sample.find_instance("M1")
        assert "wl_legacy" in m1.properties and "wl" not in m1.properties

    def test_relabel_wires(self, sample):
        count = run_design_callback(
            '(relabel-wires! (car (pages design)) "N1" "NET1")', sample
        )
        assert count == 1
        labels = {w.label for _p, w in sample.all_wires() if w.label}
        assert "NET1" in labels and "N1" not in labels

    def test_count_analog_instances(self, sample):
        count = run_design_callback(
            """
            (length (filter (lambda (i) (has-prop? i "rval"))
                            (all-instances design)))
            """,
            sample,
        )
        assert count == 1  # R1


class TestDesignCallbackRule:
    def test_applied_during_migration(self):
        libraries = build_vl_libraries()
        cell = build_sample_schematic(libraries)
        plan = build_sample_plan(source_libraries=libraries)
        plan.property_rules.add_design_callback(
            DesignCallbackRule(
                """
                (foreach inst (all-instances design)
                  (set-prop! inst "page_count" (length (pages design))))
                """,
                description="stamp page count on every instance",
            )
        )
        result = Migrator(plan).migrate(cell)
        assert result.clean
        for _page, instance in result.schematic.all_instances():
            if instance.symbol.kind == "component":
                assert instance.properties.get("page_count") == 2

    def test_failing_callback_logged_not_raised(self, sample):
        rule = DesignCallbackRule("(no-such-builtin)")
        log = IssueLog()
        rule.apply_to_design(sample, log)
        assert log.has_errors()
