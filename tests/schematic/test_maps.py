"""Tests for symbol replacement maps and property mapping rules."""

import pytest

from cadinterop.common.diagnostics import IssueLog, Severity
from cadinterop.common.geometry import Point, Rect, Transform
from cadinterop.schematic.model import Instance, Library, LibrarySet, Symbol, SymbolPin
from cadinterop.schematic.propertymap import (
    AddRule,
    CallbackRule,
    ChangeValueRule,
    DeleteRule,
    PropertyRuleSet,
    RenameRule,
    Scope,
)
from cadinterop.schematic.samples import (
    SPLIT_WL_CALLBACK,
    build_cd_libraries,
    build_symbol_map,
    build_vl_libraries,
)
from cadinterop.schematic.symbolmap import (
    SymbolKey,
    SymbolMap,
    SymbolMapError,
    SymbolMapping,
)


class TestSymbolMap:
    def test_lookup(self):
        sm = build_symbol_map()
        rule = sm.lookup(SymbolKey("vl_prims", "nand2"))
        assert rule is not None and rule.target.name == "nand2"
        assert sm.lookup(SymbolKey("vl_prims", "ghost")) is None

    def test_duplicate_source_rejected(self):
        sm = build_symbol_map()
        with pytest.raises(SymbolMapError):
            sm.add(SymbolMapping(SymbolKey("vl_prims", "nand2"), SymbolKey("x", "y")))

    def test_pin_map_roundtrip(self):
        rule = build_symbol_map().lookup(SymbolKey("vl_prims", "nand2"))
        assert rule.map_pin("A") == "IN1"
        assert rule.unmap_pin("IN1") == "A"
        assert rule.map_pin("unmapped") == "unmapped"

    def test_validate_clean_sample(self):
        log = build_symbol_map().validate(build_vl_libraries(), build_cd_libraries())
        assert not log.has_errors()

    def test_validate_missing_target_symbol(self):
        sm = SymbolMap()
        sm.add(SymbolMapping(SymbolKey("vl_prims", "nand2"), SymbolKey("cd_basic", "ghost")))
        log = sm.validate(build_vl_libraries(), build_cd_libraries())
        assert log.has_errors()
        assert any("target symbol not found" in i.message for i in log)

    def test_validate_dangling_source_pin(self):
        # inv -> nand2 without a pin map: pins A/Y don't exist on nand2 target.
        sm = SymbolMap()
        sm.add(SymbolMapping(SymbolKey("vl_prims", "inv"), SymbolKey("cd_basic", "nand2")))
        log = sm.validate(build_vl_libraries(), build_cd_libraries())
        assert any("no target pin" in i.message for i in log)

    def test_validate_non_injective_pin_map(self):
        sm = SymbolMap()
        sm.add(
            SymbolMapping(
                SymbolKey("vl_prims", "nand2"), SymbolKey("cd_basic", "nand2"),
                pin_map={"A": "IN1", "B": "IN1", "Y": "OUT"},
            )
        )
        log = sm.validate(build_vl_libraries(), build_cd_libraries())
        assert any("injective" in (i.remedy or "") for i in log)

    def test_coverage_partition(self):
        sm = build_symbol_map()
        keys = [SymbolKey("vl_prims", "nand2"), SymbolKey("vl_prims", "ghost")]
        mapped, unmapped = sm.coverage(keys)
        assert mapped == [keys[0]] and unmapped == [keys[1]]


def make_instance(library="cd_analog", name="mosn", **props):
    symbol = Symbol(
        library=library, name=name, body=Rect(0, 0, 20, 40),
        pins=[SymbolPin("G", Point(0, 20))],
    )
    instance = Instance("M1", symbol, Transform(Point(0, 0)))
    for key, value in props.items():
        instance.properties.set(key, value)
    return instance


class TestScope:
    def test_wildcards(self):
        assert Scope().matches(SymbolKey("any", "thing"))
        assert Scope(library="cd_*").matches(SymbolKey("cd_analog", "res"))
        assert not Scope(library="cd_*").matches(SymbolKey("vl_prims", "res"))
        assert Scope(name="mos?").matches(SymbolKey("l", "mosn"))


class TestDeclarativeRules:
    def test_add_rule(self):
        inst = make_instance()
        log = IssueLog()
        AddRule("vendor", "cd").apply(inst.properties, log, inst.name)
        assert inst.properties.get("vendor") == "cd"
        assert len(log) == 1

    def test_delete_rule_silent_when_absent(self):
        inst = make_instance()
        log = IssueLog()
        DeleteRule("ghost").apply(inst.properties, log, inst.name)
        assert len(log) == 0

    def test_rename_rule(self):
        inst = make_instance(rval="10k")
        log = IssueLog()
        RenameRule("rval", "r").apply(inst.properties, log, inst.name)
        assert inst.properties.get("r") == "10k"

    def test_change_value_map(self):
        inst = make_instance(model="NMOS")
        ChangeValueRule("model", value_map={"NMOS": "nch"}).apply(
            inst.properties, IssueLog(), inst.name
        )
        assert inst.properties.get("model") == "nch"

    def test_change_value_format(self):
        inst = make_instance(r="10k")
        ChangeValueRule("r", format_string="res={value}").apply(
            inst.properties, IssueLog(), inst.name
        )
        assert inst.properties.get("r") == "res=10k"

    def test_change_value_absent_noop(self):
        inst = make_instance()
        ChangeValueRule("ghost", value_map={"a": "b"}).apply(
            inst.properties, IssueLog(), inst.name
        )
        assert "ghost" not in inst.properties


class TestRuleSet:
    def test_scoped_application(self):
        rules = PropertyRuleSet()
        rules.add_rule(AddRule("hit", 1, scope=Scope(name="mosn")))
        rules.add_rule(AddRule("miss", 1, scope=Scope(name="res")))
        inst = make_instance()
        rules.apply_to_instance(inst, SymbolKey("cd_analog", "mosn"), IssueLog())
        assert "hit" in inst.properties and "miss" not in inst.properties

    def test_callback_splits_wl(self):
        rules = PropertyRuleSet()
        rules.add_callback(CallbackRule(SPLIT_WL_CALLBACK, scope=Scope(name="mosn")))
        inst = make_instance(wl="2u/0.5u")
        log = IssueLog()
        rules.apply_to_instance(inst, SymbolKey("cd_analog", "mosn"), log)
        assert inst.properties.as_dict() == {"w": "2u", "l": "0.5u"}

    def test_callback_error_reported_not_raised(self):
        rules = PropertyRuleSet()
        rules.add_callback(CallbackRule("(undefined-fn)", scope=Scope()))
        inst = make_instance()
        log = IssueLog()
        rules.apply_to_instance(inst, SymbolKey("cd_analog", "mosn"), log)
        assert log.has_errors()

    def test_rules_apply_in_order(self):
        rules = PropertyRuleSet()
        rules.add_rule(AddRule("x", "first"))
        rules.add_rule(ChangeValueRule("x", value_map={"first": "second"}))
        inst = make_instance()
        rules.apply_to_instance(inst, SymbolKey("l", "n"), IssueLog())
        assert inst.properties.get("x") == "second"

    def test_callback_sees_context(self):
        rules = PropertyRuleSet()
        rules.add_callback(
            CallbackRule('(set-prop! obj "on_page" (context obj "page"))')
        )
        inst = make_instance()
        rules.apply_to_instance(
            inst, SymbolKey("l", "n"), IssueLog(), context={"page": 7}
        )
        assert inst.properties.get("on_page") == 7
