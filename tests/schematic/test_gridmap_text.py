"""Tests for grid rescaling and cosmetic text adjustment."""

from fractions import Fraction

import pytest

from cadinterop.common.diagnostics import Category, IssueLog, Severity
from cadinterop.common.geometry import Point, Rect, Transform
from cadinterop.schematic.dialects import COMPOSER_LIKE, VIEWDRAW_LIKE
from cadinterop.schematic.gridmap import rescale_schematic, scale_symbol
from cadinterop.schematic.model import (
    Instance,
    PinDirection,
    Schematic,
    Symbol,
    SymbolPin,
    TextLabel,
    Wire,
)
from cadinterop.schematic.samples import build_sample_schematic, build_vl_libraries
from cadinterop.schematic.text import adjust_labels, label_obscured_by_wire


class TestScaleSymbol:
    def test_scales_body_and_pins(self):
        sym = Symbol(
            library="l", name="x", body=Rect(0, 0, 64, 32),
            pins=[SymbolPin("A", Point(0, 16), PinDirection.INPUT)],
        )
        scaled = scale_symbol(sym, Fraction(5, 8))
        assert scaled.body == Rect(0, 0, 40, 20)
        assert scaled.pin("A").position == Point(0, 10)
        # Original untouched.
        assert sym.body == Rect(0, 0, 64, 32)


class TestRescaleSchematic:
    def test_sample_scales_exactly(self):
        libs = build_vl_libraries()
        cell = build_sample_schematic(libs)
        log = IssueLog()
        report = rescale_schematic(cell, VIEWDRAW_LIKE, COMPOSER_LIKE, log)
        assert report.factor == Fraction(5, 8)
        assert report.points_snapped == 0
        assert not log.has_errors()
        # Spot check: U1 origin 160,160 -> 100,100.
        _page, u1 = cell.find_instance("U1")
        assert u1.transform.offset == Point(100, 100)

    def test_off_grid_point_snapped_and_logged(self):
        cell = Schematic("c", VIEWDRAW_LIKE.name)
        page = cell.add_page(Rect(0, 0, 160, 160))
        page.add_wire(Wire([Point(0, 0), Point(7, 0)]))  # 7*5/8 not integer
        log = IssueLog()
        report = rescale_schematic(cell, VIEWDRAW_LIKE, COMPOSER_LIKE, log)
        assert report.points_snapped == 1
        assert log.by_category(Category.SCALING)
        assert COMPOSER_LIKE.grid.is_on_grid(page.wires[0].points[1])

    def test_label_positions_scaled(self):
        cell = Schematic("c", VIEWDRAW_LIKE.name)
        page = cell.add_page(Rect(0, 0, 160, 160))
        page.add_label(TextLabel("t", Point(16, 32)))
        rescale_schematic(cell, VIEWDRAW_LIKE, COMPOSER_LIKE)
        assert page.labels[0].position == Point(10, 20)

    def test_wire_label_position_scaled(self):
        cell = Schematic("c", VIEWDRAW_LIKE.name)
        page = cell.add_page(Rect(0, 0, 160, 160))
        page.add_wire(Wire([Point(0, 0), Point(16, 0)], label="n",
                           label_position=Point(16, 16)))
        rescale_schematic(cell, VIEWDRAW_LIKE, COMPOSER_LIKE)
        assert page.wires[0].label_position == Point(10, 10)


class TestTextCosmetics:
    def test_e_becomes_f_mechanism(self):
        """A label whose glyph baseline lands on a wire is visually corrupted."""
        cell = Schematic("c", COMPOSER_LIKE.name)
        page = cell.add_page(Rect(0, 0, 400, 300))
        # Target-dialect baseline offset is 2; an anchor at y=102 puts the
        # baseline at y=100 where a wire runs.
        label = TextLabel("E", Point(50, 102), baseline_offset=2)
        page.add_label(label)
        page.add_wire(Wire([Point(0, 100), Point(200, 100)]))
        assert label_obscured_by_wire(label, page)

    def test_adjust_fixes_naive_copy_collision(self):
        """The paper's bug: anchor copied verbatim drops the glyph onto a
        wire under the target font's anchor-to-baseline offset; the
        adjustment rules restore the baseline."""
        cell = Schematic("c", VIEWDRAW_LIKE.name)
        page = cell.add_page(Rect(0, 0, 400, 300))
        # Source (offset 0): baseline at y=102, two units above the wire.
        page.add_label(TextLabel("E", Point(50, 102),
                                 height=8, width_per_char=6, baseline_offset=0))
        page.add_wire(Wire([Point(0, 100), Point(200, 100)]))
        log = IssueLog()
        report = adjust_labels(cell, VIEWDRAW_LIKE, COMPOSER_LIKE, log)
        assert report.labels_adjusted == 1
        assert report.collisions_avoided == 1
        label = page.labels[0]
        assert not label_obscured_by_wire(label, page)
        assert label.height == COMPOSER_LIKE.font.height

    def test_baseline_invariant(self):
        """Anchor shifts so the visual baseline stays put."""
        cell = Schematic("c", VIEWDRAW_LIKE.name)
        page = cell.add_page(Rect(0, 0, 400, 300))
        page.add_label(TextLabel("txt", Point(10, 50), baseline_offset=0))
        adjust_labels(cell, VIEWDRAW_LIKE, COMPOSER_LIKE)
        label = page.labels[0]
        assert label.baseline_y == 50
        assert label.position.y == 50 + COMPOSER_LIKE.font.baseline_offset

    def test_label_off_wire_not_counted_as_collision(self):
        cell = Schematic("c", VIEWDRAW_LIKE.name)
        page = cell.add_page(Rect(0, 0, 400, 300))
        page.add_label(TextLabel("ok", Point(10, 50)))
        report = adjust_labels(cell, VIEWDRAW_LIKE, COMPOSER_LIKE)
        assert report.collisions_avoided == 0

    def test_horizontal_overlap_required(self):
        cell = Schematic("c", COMPOSER_LIKE.name)
        page = cell.add_page(Rect(0, 0, 400, 300))
        label = TextLabel("E", Point(300, 102), baseline_offset=2)
        page.add_label(label)
        page.add_wire(Wire([Point(0, 100), Point(100, 100)]))
        assert not label_obscured_by_wire(label, page)
