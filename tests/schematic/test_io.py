"""Round-trip tests for the two vendor file formats."""

import pytest

from cadinterop.schematic import io_cd, io_vl
from cadinterop.schematic.io_cd import CDFormatError
from cadinterop.schematic.io_vl import VLFormatError
from cadinterop.schematic.model import LibrarySet, SchematicError
from cadinterop.schematic.netlist import extract
from cadinterop.schematic.samples import (
    build_sample_schematic,
    build_vl_libraries,
)


@pytest.fixture
def vl_libs():
    return build_vl_libraries()


@pytest.fixture
def sample(vl_libs):
    return build_sample_schematic(vl_libs)


def schematics_equal(a, b):
    """Structural equality good enough for round-trip checking."""
    assert a.name == b.name and a.dialect == b.dialect
    assert [(p.name, p.direction) for p in a.ports] == [
        (p.name, p.direction) for p in b.ports
    ]
    assert a.properties.as_dict() == b.properties.as_dict()
    assert len(a.pages) == len(b.pages)
    for page_a, page_b in zip(a.pages, b.pages):
        assert page_a.frame == page_b.frame
        assert len(page_a.instances) == len(page_b.instances)
        for ia, ib in zip(page_a.instances, page_b.instances):
            assert ia.name == ib.name
            assert ia.symbol.full_name == ib.symbol.full_name
            assert ia.transform == ib.transform
            assert ia.properties.as_dict() == ib.properties.as_dict()
        assert [(w.label, w.points) for w in page_a.wires] == [
            (w.label, w.points) for w in page_b.wires
        ]
        assert [(l.text, l.position, l.height) for l in page_a.labels] == [
            (l.text, l.position, l.height) for l in page_b.labels
        ]
    # Connectivity-level equality too.
    assert extract(a).signature() == extract(b).signature()


class TestVLRoundTrip:
    def test_library_roundtrip(self, vl_libs):
        lib = vl_libs.library("vl_prims")
        text = io_vl.dump_library(lib)
        loaded = io_vl.load_library(text)
        assert len(loaded) == len(lib)
        nand = loaded.get("nand2")
        assert nand.pin("A").position == lib.get("nand2").pin("A").position
        assert nand.kind == "component"

    def test_schematic_roundtrip(self, vl_libs, sample):
        text = io_vl.dump_schematic(sample)
        loaded = io_vl.load_schematic(text, vl_libs)
        schematics_equal(sample, loaded)

    def test_names_with_spaces_and_specials(self, vl_libs, sample):
        sample.properties.set("note", "two words & <brackets>")
        text = io_vl.dump_schematic(sample)
        loaded = io_vl.load_schematic(text, vl_libs)
        assert loaded.properties.get("note") == "two words & <brackets>"

    def test_typed_properties_roundtrip(self, vl_libs, sample):
        sample.properties.set("count", 42)
        sample.properties.set("ratio", 2.5)
        sample.properties.set("flag", True)
        loaded = io_vl.load_schematic(io_vl.dump_schematic(sample), vl_libs)
        assert loaded.properties.get("count") == 42
        assert loaded.properties.get("ratio") == 2.5
        assert loaded.properties.get("flag") is True

    def test_comments_and_blanks_ignored(self, vl_libs, sample):
        text = "# header comment\n\n" + io_vl.dump_schematic(sample)
        loaded = io_vl.load_schematic(text, vl_libs)
        assert loaded.name == sample.name

    def test_missing_header(self, vl_libs):
        with pytest.raises(VLFormatError):
            io_vl.load_schematic("PAGE 1 0 0 1 1\nEND\n", vl_libs)

    def test_missing_end(self, vl_libs, sample):
        text = io_vl.dump_schematic(sample).replace("\nEND\n", "\n")
        with pytest.raises(VLFormatError):
            io_vl.load_schematic(text, vl_libs)

    def test_unknown_master_rejected(self, sample):
        text = io_vl.dump_schematic(sample)
        with pytest.raises(SchematicError):
            io_vl.load_schematic(text, LibrarySet())

    def test_wire_count_mismatch(self, vl_libs):
        text = "VLSCHEM 1 c viewdraw-like\nPAGE 1 0 0 10 10\nW - 2 0 0\nENDPAGE\nEND\n"
        with pytest.raises(VLFormatError):
            io_vl.load_schematic(text, vl_libs)


class TestCDRoundTrip:
    def test_library_roundtrip(self, vl_libs):
        lib = vl_libs.library("vl_builtin")
        text = io_cd.dump_library(lib)
        loaded = io_cd.load_library(text)
        assert len(loaded) == len(lib)
        assert loaded.get("offPage").kind == "offpage_connector"

    def test_schematic_roundtrip(self, vl_libs, sample):
        text = io_cd.dump_schematic(sample)
        loaded = io_cd.load_schematic(text, vl_libs)
        schematics_equal(sample, loaded)

    def test_quoted_strings(self, vl_libs, sample):
        sample.properties.set("note", 'he said "hi"')
        loaded = io_cd.load_schematic(io_cd.dump_schematic(sample), vl_libs)
        assert loaded.properties.get("note") == 'he said "hi"'

    def test_typed_properties_roundtrip(self, vl_libs, sample):
        sample.properties.set("count", 42)
        sample.properties.set("flag", False)
        loaded = io_cd.load_schematic(io_cd.dump_schematic(sample), vl_libs)
        assert loaded.properties.get("count") == 42
        assert loaded.properties.get("flag") is False

    def test_wrong_head_rejected(self, vl_libs):
        with pytest.raises(CDFormatError):
            io_cd.load_schematic('(library "x")', vl_libs)

    def test_garbage_rejected(self, vl_libs):
        with pytest.raises(CDFormatError):
            io_cd.load_schematic("(schematic", vl_libs)


class TestCrossFormat:
    def test_vl_to_cd_preserves_connectivity(self, vl_libs, sample):
        """A design can travel VL-text -> model -> CD-text -> model intact."""
        vl_text = io_vl.dump_schematic(sample)
        via_vl = io_vl.load_schematic(vl_text, vl_libs)
        cd_text = io_cd.dump_schematic(via_vl)
        via_cd = io_cd.load_schematic(cd_text, vl_libs)
        assert extract(sample).signature() == extract(via_cd).signature()
