"""Tests for the a/L Lisp interpreter (paper Section 2, non-standard mapping)."""

import pytest

from cadinterop.common.properties import PropertyBag
from cadinterop.schematic import al
from cadinterop.schematic.al import ALError, run, run_callback


class Holder:
    """Minimal host object with a property bag."""

    def __init__(self, **props):
        self.name = "H1"
        self.properties = PropertyBag(props)


class TestReader:
    def test_atoms(self):
        assert al.parse("42") == [42]
        assert al.parse("-3.5") == [-3.5]
        assert al.parse('"hi there"') == ["hi there"]
        assert al.parse("#t #f nil") == [True, False, None]

    def test_nested_lists(self):
        forms = al.parse("(a (b 1) 2)")
        assert forms == [[al.Symbol("a"), [al.Symbol("b"), 1], 2]]

    def test_quote_sugar(self):
        assert al.parse("'x") == [[al.Symbol("quote"), al.Symbol("x")]]

    def test_comments_stripped(self):
        assert al.parse("; comment\n1 ; trailing\n2") == [1, 2]

    def test_unterminated_list(self):
        with pytest.raises(ALError):
            al.parse("(+ 1 2")

    def test_stray_close(self):
        with pytest.raises(ALError):
            al.parse(")")

    def test_escaped_string(self):
        assert al.parse(r'"say \"hi\""') == ['say "hi"']


class TestEvaluator:
    def test_arithmetic(self):
        assert run("(+ 1 2 3)") == 6
        assert run("(- 10 3 2)") == 5
        assert run("(* 2 3 4)") == 24
        assert run("(/ 10 2)") == 5
        assert run("(/ 7 2.0)") == 3.5
        assert run("(mod 7 3)") == 1

    def test_comparison(self):
        assert run("(< 1 2)") is True
        assert run("(= 2 2)") is True
        assert run("(>= 2 3)") is False

    def test_if(self):
        assert run("(if (< 1 2) 'yes 'no)") == al.Symbol("yes")
        assert run("(if #f 1)") is None

    def test_cond_with_else(self):
        assert run("(cond ((= 1 2) 10) (else 20))") == 20

    def test_define_and_lookup(self):
        assert run("(define x 5) (+ x 1)") == 6

    def test_define_function_sugar(self):
        assert run("(define (double n) (* 2 n)) (double 21)") == 42

    def test_lambda_closure(self):
        src = """
        (define (adder n) (lambda (x) (+ x n)))
        ((adder 10) 32)
        """
        assert run(src) == 42

    def test_let_scoping(self):
        assert run("(define x 1) (let ((x 10)) (+ x 1))") == 11
        assert run("(define y 1) (let ((z 10)) z) y") == 1

    def test_set_bang(self):
        assert run("(define x 1) (set! x 9) x") == 9

    def test_set_undefined_raises(self):
        with pytest.raises(ALError):
            run("(set! ghost 1)")

    def test_undefined_variable(self):
        with pytest.raises(ALError):
            run("ghost")

    def test_begin_sequencing(self):
        assert run("(define x 0) (begin (set! x 1) (set! x (+ x 1)) x)") == 2

    def test_and_or_short_circuit(self):
        assert run("(and 1 2 3)") == 3
        assert run("(and 1 #f 3)") is False
        assert run("(or #f nil 7)") == 7
        assert run("(or #f #f)") is False

    def test_while_loop(self):
        src = """
        (define i 0) (define total 0)
        (while (< i 5) (set! total (+ total i)) (set! i (+ i 1)))
        total
        """
        assert run(src) == 10

    def test_foreach(self):
        src = """
        (define total 0)
        (foreach x (list 1 2 3 4) (set! total (+ total x)))
        total
        """
        assert run(src) == 10

    def test_recursion(self):
        src = """
        (define (fact n) (if (<= n 1) 1 (* n (fact (- n 1)))))
        (fact 6)
        """
        assert run(src) == 720

    def test_call_non_procedure(self):
        with pytest.raises(ALError):
            run("(1 2 3)")

    def test_wrong_arity(self):
        with pytest.raises(ALError):
            run("((lambda (a b) a) 1)")


class TestBuiltins:
    def test_list_ops(self):
        assert run("(car (list 1 2 3))") == 1
        assert run("(cdr (list 1 2 3))") == [2, 3]
        assert run("(cadr (list 1 2 3))") == 2
        assert run("(cons 0 (list 1))") == [0, 1]
        assert run("(append (list 1) (list 2 3))") == [1, 2, 3]
        assert run("(length (list 1 2))") == 2
        assert run("(reverse (list 1 2 3))") == [3, 2, 1]
        assert run("(nth 1 (list 4 5 6))") == 5

    def test_car_empty_raises(self):
        with pytest.raises(ALError):
            run("(car (list))")

    def test_higher_order(self):
        assert run("(map (lambda (x) (* x x)) (list 1 2 3))") == [1, 4, 9]
        assert run("(filter (lambda (x) (> x 1)) (list 0 1 2 3))") == [2, 3]

    def test_string_ops(self):
        assert run('(split "2u/0.5u" "/")') == ["2u", "0.5u"]
        assert run('(join (list "a" "b") "-")') == "a-b"
        assert run('(concat "w=" 2)') == "w=2"
        assert run('(upcase "abc")') == "ABC"
        assert run('(substring "hello" 1 3)') == "el"
        assert run('(replace "a-b" "-" "_")') == "a_b"
        assert run('(startswith "foo.bar" "foo")') is True
        assert run('(string->number "42")') == 42
        assert run('(string->number "4.5")') == 4.5

    def test_string_to_number_error(self):
        with pytest.raises(ALError):
            run('(string->number "abc")')


class TestDesignAccess:
    def test_get_set_del(self):
        target = Holder(wl="2u/0.5u")
        run_callback(
            """
            (set-prop! obj "w" (car (split (get-prop obj "wl") "/")))
            (set-prop! obj "l" (cadr (split (get-prop obj "wl") "/")))
            (del-prop! obj "wl")
            """,
            target,
        )
        assert target.properties.as_dict() == {"w": "2u", "l": "0.5u"}

    def test_provenance_marked(self):
        target = Holder()
        run_callback('(set-prop! obj "x" 1)', target)
        assert target.properties.get_property("x").origin == "a/L"

    def test_rename_and_query(self):
        target = Holder(old=5)
        result = run_callback(
            '(rename-prop! obj "old" "new") (has-prop? obj "new")', target
        )
        assert result is True
        assert target.properties.get("new") == 5

    def test_prop_names_and_object_name(self):
        target = Holder(a=1, b=2)
        assert run_callback("(prop-names obj)", target) == ["a", "b"]
        assert run_callback("(object-name obj)", target) == "H1"

    def test_context_access(self):
        target = Holder()
        assert run_callback('(context obj "page")', target, {"page": 3}) == 3
        assert run_callback('(context obj "missing" "dflt")', target) == "dflt"

    def test_conditional_callback_noop(self):
        target = Holder(other=1)
        run_callback(
            '(if (has-prop? obj "wl") (set-prop! obj "w" 1))', target
        )
        assert "w" not in target.properties

    def test_object_without_bag_rejected(self):
        with pytest.raises(ALError):
            run_callback("nil", object())
