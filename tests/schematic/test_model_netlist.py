"""Tests for the schematic model and geometric netlist extraction."""

import pytest

from cadinterop.common.geometry import Orientation, Point, Rect, Transform
from cadinterop.schematic.dialects import COMPOSER_LIKE, VIEWDRAW_LIKE
from cadinterop.schematic.model import (
    Design,
    Instance,
    Library,
    LibrarySet,
    PinDirection,
    Port,
    Schematic,
    SchematicError,
    Symbol,
    SymbolPin,
    Wire,
)
from cadinterop.schematic.netlist import extract
from cadinterop.schematic.samples import build_sample_schematic, build_vl_libraries


def inv_symbol(library="lib"):
    return Symbol(
        library=library, name="inv", body=Rect(0, 0, 64, 32),
        pins=[
            SymbolPin("A", Point(0, 16), PinDirection.INPUT),
            SymbolPin("Y", Point(64, 16), PinDirection.OUTPUT),
        ],
    )


class TestSymbol:
    def test_duplicate_pin_rejected(self):
        with pytest.raises(SchematicError):
            Symbol(
                library="l", name="x",
                pins=[SymbolPin("A", Point(0, 0)), SymbolPin("A", Point(0, 16))],
            )

    def test_bad_kind_rejected(self):
        with pytest.raises(SchematicError):
            Symbol(library="l", name="x", kind="widget")

    def test_pin_lookup(self):
        sym = inv_symbol()
        assert sym.pin("A").position == Point(0, 16)
        assert sym.has_pin("Y") and not sym.has_pin("Z")
        with pytest.raises(SchematicError):
            sym.pin("Z")

    def test_bad_pin_direction(self):
        with pytest.raises(SchematicError):
            SymbolPin("A", Point(0, 0), "sideways")


class TestLibrary:
    def test_add_and_get(self):
        lib = Library("lib")
        lib.add(inv_symbol())
        assert lib.get("inv").name == "inv"
        assert lib.has("inv") and not lib.has("nand2")
        assert len(lib) == 1

    def test_wrong_library_name_rejected(self):
        lib = Library("other")
        with pytest.raises(SchematicError):
            lib.add(inv_symbol(library="lib"))

    def test_duplicate_rejected(self):
        lib = Library("lib")
        lib.add(inv_symbol())
        with pytest.raises(SchematicError):
            lib.add(inv_symbol())

    def test_library_set_resolution(self):
        libs = LibrarySet([Library("a")])
        with pytest.raises(SchematicError):
            libs.library("b")
        with pytest.raises(SchematicError):
            libs.resolve("a", "ghost")


class TestInstance:
    def test_pin_positions_with_transform(self):
        instance = Instance(
            "I1", inv_symbol(), Transform(Point(100, 100), Orientation.R90)
        )
        # R90 maps (0,16)->(-16,0); +offset -> (84,100)
        assert instance.pin_position("A") == Point(84, 100)

    def test_bounding_box(self):
        instance = Instance("I1", inv_symbol(), Transform(Point(10, 20)))
        assert instance.bounding_box() == Rect(10, 20, 74, 52)


class TestPageAndSchematic:
    def test_duplicate_instance_rejected(self):
        cell = Schematic("c", VIEWDRAW_LIKE.name)
        page = cell.add_page(Rect(0, 0, 100, 100))
        page.add_instance(Instance("I1", inv_symbol(), Transform(Point(0, 0))))
        with pytest.raises(SchematicError):
            page.add_instance(Instance("I1", inv_symbol(), Transform(Point(0, 64))))

    def test_wire_validation(self):
        with pytest.raises(SchematicError):
            Wire([Point(0, 0)])
        with pytest.raises(ValueError):
            Wire([Point(0, 0), Point(3, 4)])  # diagonal

    def test_ports(self):
        cell = Schematic("c", VIEWDRAW_LIKE.name)
        cell.add_port(Port("clk", PinDirection.INPUT))
        assert cell.port("clk").direction == PinDirection.INPUT
        with pytest.raises(SchematicError):
            cell.add_port(Port("clk"))
        with pytest.raises(SchematicError):
            cell.port("nope")

    def test_find_instance_across_pages(self):
        cell = Schematic("c", VIEWDRAW_LIKE.name)
        cell.add_page(Rect(0, 0, 100, 100))
        page2 = cell.add_page(Rect(0, 0, 100, 100))
        page2.add_instance(Instance("I9", inv_symbol(), Transform(Point(0, 0))))
        found_page, found = cell.find_instance("I9")
        assert found_page.number == 2 and found.name == "I9"

    def test_design_top_cell(self):
        design = Design("d")
        with pytest.raises(SchematicError):
            design.top_cell
        cell = Schematic("c", VIEWDRAW_LIKE.name)
        design.add_cell(cell)
        assert design.top_cell is cell


class TestNetlistExtraction:
    def build_two_inv_page(self):
        cell = Schematic("c", VIEWDRAW_LIKE.name)
        page = cell.add_page(Rect(0, 0, 640, 480))
        page.add_instance(Instance("I1", inv_symbol(), Transform(Point(0, 0))))
        page.add_instance(Instance("I2", inv_symbol(), Transform(Point(160, 0))))
        page.add_wire(Wire([Point(64, 16), Point(160, 16)], label="mid"))
        return cell

    def test_simple_connection(self):
        netlist = extract(self.build_two_inv_page())
        net = netlist.net("mid")
        assert net.terminals == {("I1", "Y"), ("I2", "A")}

    def test_dangling_pins_are_single_terminal_nets(self):
        netlist = extract(self.build_two_inv_page())
        singles = [n for n in netlist.nets.values() if n.terminal_count == 1]
        assert len(singles) == 2  # I1.A and I2.Y

    def test_touching_wires_merge(self):
        cell = Schematic("c", VIEWDRAW_LIKE.name)
        page = cell.add_page(Rect(0, 0, 640, 480))
        page.add_wire(Wire([Point(0, 0), Point(100, 0)], label="a"))
        page.add_wire(Wire([Point(50, 0), Point(50, 100)]))
        netlist = extract(cell)
        assert len(netlist.nets) == 1
        assert netlist.net("a").wire_length == 200

    def test_crossing_without_touching_does_not_merge(self):
        # Two parallel wires never touch.
        cell = Schematic("c", VIEWDRAW_LIKE.name)
        page = cell.add_page(Rect(0, 0, 640, 480))
        page.add_wire(Wire([Point(0, 0), Point(100, 0)], label="a"))
        page.add_wire(Wire([Point(0, 16), Point(100, 16)], label="b"))
        assert len(extract(cell).nets) == 2

    def test_implicit_cross_page_merge_viewdraw(self):
        cell = Schematic("c", VIEWDRAW_LIKE.name)
        for _ in range(2):
            page = cell.add_page(Rect(0, 0, 640, 480))
            page.add_instance(Instance("I" + str(page.number), inv_symbol(), Transform(Point(0, 0))))
            page.add_wire(Wire([Point(64, 16), Point(128, 16)], label="x"))
        netlist = extract(cell)
        assert netlist.net("x").terminals == {("I1", "Y"), ("I2", "Y")}
        assert netlist.net("x").pages == {1, 2}

    def test_explicit_dialect_does_not_merge_by_name(self):
        cell = Schematic("c", COMPOSER_LIKE.name)
        for _ in range(2):
            page = cell.add_page(Rect(0, 0, 640, 480))
            page.add_wire(Wire([Point(0, 0), Point(100, 0)], label="x"))
        netlist = extract(cell)
        assert len(netlist.nets) == 2
        assert netlist.log.has_errors()  # same label on disjoint nets flagged

    def test_shorted_labels_warn(self):
        cell = Schematic("c", VIEWDRAW_LIKE.name)
        page = cell.add_page(Rect(0, 0, 640, 480))
        page.add_wire(Wire([Point(0, 0), Point(100, 0)], label="a"))
        page.add_wire(Wire([Point(50, 0), Point(50, 50)], label="b"))
        netlist = extract(cell)
        assert len(netlist.nets) == 1
        assert any("multiple labels" in i.message for i in netlist.log)

    def test_port_label_preferred_for_net_name(self):
        cell = self.build_two_inv_page()
        cell.add_port(Port("mid", PinDirection.OUTPUT))
        netlist = extract(cell)
        assert "mid" in netlist.nets

    def test_signature_name_free(self):
        a = extract(self.build_two_inv_page())
        cell_b = self.build_two_inv_page()
        for page in cell_b.pages:
            for wire in page.wires:
                wire.label = "renamed"
        b = extract(cell_b)
        assert a.signature() == b.signature()

    def test_sample_schematic_nets(self):
        libs = build_vl_libraries()
        cell = build_sample_schematic(libs)
        netlist = extract(cell)
        # Implicit cross-page OUT- merge.
        out = netlist.net("OUT-")
        assert out.terminals == {("U2", "Y"), ("U3", "A")}
        assert out.pages == {1, 2}
        # Global ground.
        gnd = netlist.net("GND")
        assert gnd.is_global and ("R1", "P") in gnd.terminals
        # Mid-segment tap joins N1.
        assert ("R1", "N") in netlist.net("N1").terminals

    def test_terminal_map(self):
        netlist = extract(self.build_two_inv_page())
        assert netlist.terminal_map()[("I1", "Y")] == "mid"
