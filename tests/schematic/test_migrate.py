"""End-to-end migration pipeline tests (paper Section 2 complete)."""

import pytest

from cadinterop.common.diagnostics import Category, Severity
from cadinterop.schematic.dialects import COMPOSER_LIKE, VIEWDRAW_LIKE
from cadinterop.schematic.migrate import Migrator, copy_schematic
from cadinterop.schematic.model import Wire
from cadinterop.schematic.netlist import extract
from cadinterop.schematic.samples import (
    build_sample_plan,
    build_sample_schematic,
    build_vl_libraries,
    generate_chain_schematic,
)
from cadinterop.schematic.verify import audit_properties, verify_migration


@pytest.fixture(scope="module")
def vl_libs():
    return build_vl_libraries()


@pytest.fixture()
def sample(vl_libs):
    return build_sample_schematic(vl_libs)


@pytest.fixture()
def result(vl_libs, sample):
    plan = build_sample_plan(source_libraries=vl_libs)
    return Migrator(plan).migrate(sample)


class TestPipeline:
    def test_migration_is_clean(self, result):
        assert result.clean
        assert result.verification.equivalent

    def test_source_not_modified(self, vl_libs, sample):
        before = extract(sample).signature()
        plan = build_sample_plan(source_libraries=vl_libs)
        Migrator(plan).migrate(sample)
        assert extract(sample).signature() == before
        assert sample.dialect == VIEWDRAW_LIKE.name
        assert sample.ports[1].name == "OUT-"

    def test_dialect_switched(self, result):
        assert result.schematic.dialect == COMPOSER_LIKE.name

    def test_all_components_replaced(self, result):
        libraries_used = {
            inst.symbol.library
            for _p, inst in result.schematic.all_instances()
            if inst.symbol.kind == "component"
        }
        assert libraries_used <= {"cd_basic", "cd_analog"}

    def test_bus_translation_applied(self, result):
        assert result.bus_renames["A1"] == "A<1>"
        assert result.bus_renames["OUT-"] == "OUT_n"
        labels = {w.label for _p, w in result.schematic.all_wires() if w.label}
        assert "A<1>" in labels and "OUT_n" in labels and "A1" not in labels

    def test_port_names_translated(self, result):
        assert {p.name for p in result.schematic.ports} == {"A<0>", "OUT_n"}

    def test_property_rules_applied(self, result):
        _page, r1 = result.schematic.find_instance("R1")
        assert r1.properties.get("r") == "10k"
        assert "rval" not in r1.properties
        assert r1.properties.get("migrated_by") == "cadinterop"

    def test_al_callback_split_wl(self, result):
        _page, m1 = result.schematic.find_instance("M1")
        assert m1.properties.get("w") == "2u"
        assert m1.properties.get("l") == "0.5u"
        assert "wl" not in m1.properties

    def test_global_net_renamed(self, result):
        netlist = extract(result.schematic)
        gnd_nets = [n for n in netlist.nets.values() if n.is_global]
        assert any("gnd!" in n.labels for n in gnd_nets)

    def test_offpage_connectors_synthesized(self, result):
        assert result.connectors.offpage_added == 2
        connectors = [
            i for _p, i in result.schematic.all_instances()
            if i.symbol.kind == "offpage_connector"
        ]
        assert {c.properties.get("signal") for c in connectors} == {"OUT_n"}

    def test_hierarchy_connectors_synthesized(self, result):
        assert result.connectors.hierarchy_added == 2

    def test_minimal_ripup_stats(self, result):
        assert result.replacements.replacements == 6
        assert result.replacements.total_ripped > 0
        assert result.replacements.mean_similarity > 0.5

    def test_no_manual_cleanup_needed(self, result):
        """Paper: 'a high degree of automation with no manual post
        translation cleanup' — nothing above WARNING left in the log."""
        assert not result.log.has_errors()

    def test_target_geometry_on_grid(self, result):
        grid = COMPOSER_LIKE.grid
        for _page, wire in result.schematic.all_wires():
            for point in wire.points:
                assert grid.is_on_grid(point)

    def test_property_audit_passes(self, vl_libs, sample, result):
        log = audit_properties(sample, result.schematic, required=["designer"])
        assert not log.has_errors()


class TestNaiveStrategyComparison:
    def test_naive_rips_more_and_breaks_taps(self, vl_libs, sample):
        """The naive full-rip baseline tears up far more segments AND loses
        the resistor's mid-segment tap — independent verification catches
        it, which is the paper's argument for both minimization and
        verification."""
        minimal = Migrator(build_sample_plan(source_libraries=vl_libs)).migrate(sample)
        naive = Migrator(
            build_sample_plan(source_libraries=vl_libs, strategy="naive")
        ).migrate(sample)
        assert naive.replacements.total_ripped > minimal.replacements.total_ripped
        assert naive.replacements.mean_similarity < minimal.replacements.mean_similarity
        assert minimal.verification.equivalent
        assert not naive.verification.equivalent
        assert "N1" in naive.verification.split_nets

    def test_naive_verifies_on_tapless_corpus(self, vl_libs):
        """Without mid-segment taps the naive baseline is merely ugly, not
        wrong: connectivity still verifies."""
        cell = generate_chain_schematic(vl_libs, pages=2, chains_per_page=2, stages=3)
        naive = Migrator(
            build_sample_plan(source_libraries=vl_libs, strategy="naive")
        ).migrate(cell)
        assert naive.verification.equivalent


class TestVerificationCatchesFaults:
    def test_broken_wire_detected(self, vl_libs, sample):
        plan = build_sample_plan(source_libraries=vl_libs, verify=False)
        result = Migrator(plan).migrate(sample)
        # Injected fault: pull the N1 wire off U2's input pin so the
        # three-terminal net splits.
        target = result.schematic
        page = target.pages[0]
        wire = next(w for w in page.wires if w.label == "N1")
        wire.points[-1] = wire.points[-1].translated(0, 5)
        verification = verify_migration(sample, target, plan.symbol_map, plan.global_map)
        assert not verification.equivalent
        assert verification.missing_terminals or verification.split_nets

    def test_short_detected(self, vl_libs, sample):
        plan = build_sample_plan(source_libraries=vl_libs, verify=False)
        result = Migrator(plan).migrate(sample)
        page = result.schematic.pages[0]
        # Injected fault: a strap shorting A<0> (y=130) to A<1> (y=110).
        page.add_wire(Wire([__import__('cadinterop.common.geometry', fromlist=['Point']).Point(80, 110),
                            __import__('cadinterop.common.geometry', fromlist=['Point']).Point(80, 130)]))
        verification = verify_migration(
            sample, result.schematic, plan.symbol_map, plan.global_map
        )
        assert not verification.equivalent
        assert verification.merged_nets or verification.extra_terminals

    def test_dropped_instance_detected(self, vl_libs, sample):
        plan = build_sample_plan(source_libraries=vl_libs, verify=False)
        result = Migrator(plan).migrate(sample)
        result.schematic.pages[1].remove_instance("M1")
        verification = verify_migration(
            sample, result.schematic, plan.symbol_map, plan.global_map
        )
        assert not verification.equivalent

    def test_property_audit_catches_changed_value(self, vl_libs, sample):
        plan = build_sample_plan(source_libraries=vl_libs)
        result = Migrator(plan).migrate(sample)
        _page, r1 = result.schematic.find_instance("R1")
        r1.properties.set("designer", "someone-else")
        sample_with = copy_schematic(sample)
        _sp, sr1 = sample_with.find_instance("R1")
        sr1.properties.set("designer", "exar-demo")
        log = audit_properties(sample_with, result.schematic, required=["designer"])
        assert log.has_errors()


class TestChainCorpus:
    @pytest.mark.parametrize("pages,chains,stages", [(2, 2, 3), (3, 4, 5)])
    def test_chain_migrations_verify(self, vl_libs, pages, chains, stages):
        cell = generate_chain_schematic(
            vl_libs, pages=pages, chains_per_page=chains, stages=stages
        )
        plan = build_sample_plan(source_libraries=vl_libs)
        result = Migrator(plan).migrate(cell)
        assert result.verification.equivalent, result.verification.summary()
        assert result.clean

    def test_chain_offpage_count(self, vl_libs):
        cell = generate_chain_schematic(vl_libs, pages=3, chains_per_page=2, stages=3)
        plan = build_sample_plan(source_libraries=vl_libs)
        result = Migrator(plan).migrate(cell)
        # Each of the 2 rows crosses 2 page boundaries; each boundary net
        # appears on 2 pages -> 2 connectors per boundary net.
        assert result.connectors.offpage_added == 2 * 2 * 2


class TestStageInstrumentation:
    def test_stage_samples_cover_the_pipeline(self, result):
        from cadinterop.schematic.migrate import PIPELINE_STAGES

        assert [sample.stage for sample in result.stages] == list(PIPELINE_STAGES)
        assert all(sample.seconds >= 0 for sample in result.stages)
        items = {sample.stage: sample.items for sample in result.stages}
        assert items["replacement"] > 0
        assert items["verification"] > 0  # source nets compared

    def test_verification_stage_absent_when_disabled(self, vl_libs, sample):
        from cadinterop.schematic.migrate import PIPELINE_STAGES

        plan = build_sample_plan(source_libraries=vl_libs, verify=False)
        result = Migrator(plan).migrate(sample)
        stages = [s.stage for s in result.stages]
        assert stages == list(PIPELINE_STAGES[:-1])
        assert "verification" not in stages

    def test_stage_observer_sees_every_sample(self, vl_libs, sample):
        seen = []
        plan = build_sample_plan(source_libraries=vl_libs)
        result = Migrator(plan, stage_observer=seen.append).migrate(sample)
        assert seen == result.stages
