"""Tests for hierarchy/off-page connector synthesis (paper Section 2)."""

import pytest

from cadinterop.common.diagnostics import IssueLog
from cadinterop.common.geometry import Point, Rect, Transform
from cadinterop.schematic.connectors import (
    build_connector_library,
    find_floating_ends,
    insert_hierarchy_connectors,
    insert_offpage_connectors,
)
from cadinterop.schematic.dialects import COMPOSER_LIKE
from cadinterop.schematic.model import (
    Instance,
    LibrarySet,
    PinDirection,
    Port,
    Schematic,
    Symbol,
    SymbolPin,
    Wire,
)
from cadinterop.schematic.netlist import extract


@pytest.fixture
def target_libs():
    return LibrarySet([build_connector_library(COMPOSER_LIKE)])


def buf_symbol():
    return Symbol(
        library="cd_basic2", name="buf", body=Rect(0, 0, 40, 20),
        pins=[
            SymbolPin("IN", Point(0, 10), PinDirection.INPUT),
            SymbolPin("OUT", Point(40, 10), PinDirection.OUTPUT),
        ],
    )


class TestConnectorLibrary:
    def test_symbols_present_with_kinds(self, target_libs):
        lib = target_libs.library("cd_basic")
        assert lib.get("offPage").kind == "offpage_connector"
        assert lib.get("hierIn").kind == "hier_connector"
        assert lib.get("vdd").kind == "global"
        assert lib.get("gnd").kind == "global"

    def test_connector_pin_at_origin(self, target_libs):
        sym = target_libs.library("cd_basic").get("offPage")
        assert sym.pin("P").position == Point(0, 0)


class TestFloatingEnds:
    def test_detects_free_end(self):
        cell = Schematic("c", COMPOSER_LIKE.name)
        page = cell.add_page(Rect(0, 0, 400, 300))
        page.add_instance(Instance("U1", buf_symbol(), Transform(Point(100, 100))))
        page.add_wire(Wire([Point(140, 110), Point(200, 110)]))
        ends = find_floating_ends(page)
        assert [e.point for e in ends] == [Point(200, 110)]

    def test_wire_into_wire_not_floating(self):
        cell = Schematic("c", COMPOSER_LIKE.name)
        page = cell.add_page(Rect(0, 0, 400, 300))
        page.add_wire(Wire([Point(0, 0), Point(100, 0)]))
        page.add_wire(Wire([Point(50, 0), Point(50, 50)]))
        ends = find_floating_ends(page)
        points = {e.point for e in ends}
        assert Point(50, 0) not in points
        assert points == {Point(0, 0), Point(100, 0), Point(50, 50)}


class TestOffpageInsertion:
    def build_cross_page_cell(self):
        cell = Schematic("c", COMPOSER_LIKE.name)
        for _ in range(2):
            page = cell.add_page(Rect(0, 0, 400, 300))
            page.add_instance(
                Instance(f"U{page.number}", buf_symbol(), Transform(Point(100, 100)))
            )
            page.add_wire(Wire([Point(140, 110), Point(200, 110)], label="link"))
        return cell

    def test_connectors_join_pages(self, target_libs):
        cell = self.build_cross_page_cell()
        log = IssueLog()
        report = insert_offpage_connectors(cell, COMPOSER_LIKE, target_libs, log)
        assert report.offpage_added == 2
        netlist = extract(cell)
        assert netlist.net("link").terminals >= {("U1", "OUT"), ("U2", "OUT")}
        assert not netlist.log.has_errors()

    def test_single_page_label_not_touched(self, target_libs):
        cell = Schematic("c", COMPOSER_LIKE.name)
        page = cell.add_page(Rect(0, 0, 400, 300))
        page.add_wire(Wire([Point(0, 0), Point(100, 0)], label="solo"))
        report = insert_offpage_connectors(cell, COMPOSER_LIKE, target_libs)
        assert report.offpage_added == 0

    def test_prefers_floating_ends(self, target_libs):
        cell = self.build_cross_page_cell()
        report = insert_offpage_connectors(cell, COMPOSER_LIKE, target_libs)
        assert report.placed_on_floating_end == 2
        assert report.placed_at_sheet_edge == 0

    def test_sheet_edge_stub_when_no_floating_end(self, target_libs):
        cell = Schematic("c", COMPOSER_LIKE.name)
        for _ in range(2):
            page = cell.add_page(Rect(0, 0, 400, 300))
            # Wire pinned at both ends: U at each side.
            page.add_instance(
                Instance("A" + str(page.number), buf_symbol(), Transform(Point(0, 100)))
            )
            page.add_instance(
                Instance("B" + str(page.number), buf_symbol(), Transform(Point(100, 100)))
            )
            page.add_wire(Wire([Point(40, 110), Point(100, 110)], label="x"))
        report = insert_offpage_connectors(cell, COMPOSER_LIKE, target_libs)
        assert report.offpage_added == 2
        assert report.placed_at_sheet_edge + report.placed_direct == 2
        netlist = extract(cell)
        assert netlist.net("x").terminals >= {("A1", "OUT"), ("B1", "IN")}

    def test_connector_instances_carry_signal(self, target_libs):
        cell = self.build_cross_page_cell()
        insert_offpage_connectors(cell, COMPOSER_LIKE, target_libs)
        connectors = [
            inst for _p, inst in cell.all_instances()
            if inst.symbol.kind == "offpage_connector"
        ]
        assert len(connectors) == 2
        assert all(inst.properties.get("signal") == "link" for inst in connectors)


class TestHierarchyInsertion:
    def build_port_cell(self):
        cell = Schematic("c", COMPOSER_LIKE.name)
        cell.add_port(Port("din", PinDirection.INPUT))
        cell.add_port(Port("dout", PinDirection.OUTPUT))
        page = cell.add_page(Rect(0, 0, 400, 300))
        page.add_instance(Instance("U1", buf_symbol(), Transform(Point(100, 100))))
        page.add_wire(Wire([Point(40, 110), Point(100, 110)], label="din"))
        page.add_wire(Wire([Point(140, 110), Point(200, 110)], label="dout"))
        return cell

    def test_connectors_placed_with_direction(self, target_libs):
        cell = self.build_port_cell()
        report = insert_hierarchy_connectors(cell, COMPOSER_LIKE, target_libs)
        assert report.hierarchy_added == 2
        by_symbol = {
            inst.symbol.name
            for _p, inst in cell.all_instances()
            if inst.symbol.kind == "hier_connector"
        }
        assert by_symbol == {"hierIn", "hierOut"}

    def test_missing_net_logged_as_error(self, target_libs):
        cell = self.build_port_cell()
        cell.add_port(Port("ghost", PinDirection.INPUT))
        log = IssueLog()
        insert_hierarchy_connectors(cell, COMPOSER_LIKE, target_libs, log)
        assert any("ghost" == issue.subject for issue in log if issue.severity >= 40)

    def test_connectivity_intact_after_insertion(self, target_libs):
        cell = self.build_port_cell()
        insert_hierarchy_connectors(cell, COMPOSER_LIKE, target_libs)
        netlist = extract(cell)
        assert ("U1", "IN") in netlist.net("din").terminals
        assert ("U1", "OUT") in netlist.net("dout").terminals
        assert not netlist.log.has_errors()
