"""Tests for component replacement with minimal rip-up (paper Figure 1)."""

import pytest

from cadinterop.common.geometry import Orientation, Point, Rect, Transform
from cadinterop.schematic.model import (
    Instance,
    PinDirection,
    Schematic,
    Symbol,
    SymbolPin,
    Wire,
)
from cadinterop.schematic.netlist import extract
from cadinterop.schematic.dialects import VIEWDRAW_LIKE
from cadinterop.schematic.ripup import (
    BatchReplacementReport,
    RipupError,
    replace_component,
)
from cadinterop.schematic.symbolmap import SymbolKey, SymbolMapping


def source_symbol():
    return Symbol(
        library="src", name="buf", body=Rect(0, 0, 40, 40),
        pins=[
            SymbolPin("A", Point(0, 20), PinDirection.INPUT),
            SymbolPin("Y", Point(40, 20), PinDirection.OUTPUT),
        ],
    )


def target_symbol(dy=10):
    """Same cell, pins shifted down by ``dy`` and renamed."""
    return Symbol(
        library="tgt", name="buf", body=Rect(0, 0, 40, 40),
        pins=[
            SymbolPin("IN", Point(0, 20 - dy), PinDirection.INPUT),
            SymbolPin("OUT", Point(40, 20 - dy), PinDirection.OUTPUT),
        ],
    )


def mapping(pin_map=None):
    return SymbolMapping(
        source=SymbolKey("src", "buf"),
        target=SymbolKey("tgt", "buf"),
        pin_map=pin_map or {"A": "IN", "Y": "OUT"},
    )


def build_page(wire_points_in, wire_points_out):
    cell = Schematic("c", VIEWDRAW_LIKE.name)
    page = cell.add_page(Rect(0, 0, 640, 480))
    page.add_instance(Instance("U1", source_symbol(), Transform(Point(100, 100))))
    page.add_wire(Wire(wire_points_in, label="in"))
    page.add_wire(Wire(wire_points_out, label="out"))
    return cell, page


class TestMinimalReplacement:
    def test_straight_wires_get_one_jog_each(self):
        # A at (100,120), Y at (140,120); target pins 10 lower.
        cell, page = build_page(
            [Point(40, 120), Point(100, 120)],
            [Point(140, 120), Point(200, 120)],
        )
        stats = replace_component(page, "U1", mapping(), target_symbol())
        assert stats.ripped_segments == 2
        assert stats.added_segments == 4  # each end needs a jog
        assert stats.moved_pins == 2

    def test_connectivity_preserved(self):
        cell, page = build_page(
            [Point(40, 120), Point(100, 120)],
            [Point(140, 120), Point(200, 120)],
        )
        replace_component(page, "U1", mapping(), target_symbol())
        netlist = extract(cell)
        assert netlist.net("in").terminals == {("U1", "IN")}
        assert netlist.net("out").terminals == {("U1", "OUT")}

    def test_collinear_move_reuses_axis(self):
        # Vertical wire into A; pin moves along the wire axis: no jog.
        cell = Schematic("c", VIEWDRAW_LIKE.name)
        page = cell.add_page(Rect(0, 0, 640, 480))
        page.add_instance(Instance("U1", source_symbol(), Transform(Point(100, 100))))
        page.add_wire(Wire([Point(100, 40), Point(100, 120)], label="in"))
        stats = replace_component(page, "U1", mapping(), target_symbol())
        # A (100,120) -> IN (100,110): same x as anchor -> endpoint adjusted.
        wire = page.wires[0]
        assert wire.points == [Point(100, 40), Point(100, 110)]
        assert stats.added_segments >= 1

    def test_zero_move_pins_untouched(self):
        cell, page = build_page(
            [Point(40, 120), Point(100, 120)],
            [Point(140, 120), Point(200, 120)],
        )
        stats = replace_component(page, "U1", mapping(), target_symbol(dy=0))
        assert stats.ripped_segments == 0
        assert stats.unmoved_pins == 2
        assert stats.similarity == 1.0

    def test_untouched_far_segments_retained(self):
        cell = Schematic("c", VIEWDRAW_LIKE.name)
        page = cell.add_page(Rect(0, 0, 640, 480))
        page.add_instance(Instance("U1", source_symbol(), Transform(Point(100, 100))))
        # Three-segment wire; only the last segment touches the pin.
        page.add_wire(Wire(
            [Point(20, 40), Point(60, 40), Point(60, 120), Point(100, 120)],
            label="in",
        ))
        stats = replace_component(page, "U1", mapping(), target_symbol())
        assert stats.ripped_segments == 1
        assert stats.retained_segments == 2
        assert 0.0 < stats.similarity < 1.0

    def test_replacement_applies_origin_offset_and_rotation(self):
        cell, page = build_page(
            [Point(40, 120), Point(100, 120)],
            [Point(140, 120), Point(200, 120)],
        )
        rule = SymbolMapping(
            source=SymbolKey("src", "buf"),
            target=SymbolKey("tgt", "buf"),
            origin_offset=Point(0, 10),
            pin_map={"A": "IN", "Y": "OUT"},
        )
        stats = replace_component(page, "U1", rule, target_symbol())
        # Offset +10 exactly cancels the dy=10 pin shift: no rips at all.
        assert stats.ripped_segments == 0
        instance = page.instance("U1")
        assert instance.transform.offset == Point(100, 110)

    def test_unknown_target_pin_raises(self):
        cell, page = build_page(
            [Point(40, 120), Point(100, 120)],
            [Point(140, 120), Point(200, 120)],
        )
        bad = SymbolMapping(
            source=SymbolKey("src", "buf"),
            target=SymbolKey("tgt", "buf"),
            pin_map={"A": "NOPE", "Y": "OUT"},
        )
        with pytest.raises(RipupError):
            replace_component(page, "U1", bad, target_symbol())

    def test_properties_survive_replacement(self):
        cell, page = build_page(
            [Point(40, 120), Point(100, 120)],
            [Point(140, 120), Point(200, 120)],
        )
        page.instance("U1").properties.set("w", "2u")
        replace_component(page, "U1", mapping(), target_symbol())
        assert page.instance("U1").properties.get("w") == "2u"

    def test_unknown_strategy_rejected(self):
        cell, page = build_page(
            [Point(40, 120), Point(100, 120)],
            [Point(140, 120), Point(200, 120)],
        )
        with pytest.raises(ValueError):
            replace_component(page, "U1", mapping(), target_symbol(), strategy="magic")


class TestNaiveBaseline:
    def test_naive_rips_everything(self):
        cell = Schematic("c", VIEWDRAW_LIKE.name)
        page = cell.add_page(Rect(0, 0, 640, 480))
        page.add_instance(Instance("U1", source_symbol(), Transform(Point(100, 100))))
        page.add_wire(Wire(
            [Point(20, 40), Point(60, 40), Point(60, 120), Point(100, 120)],
            label="in",
        ))
        stats = replace_component(
            page, "U1", mapping(), target_symbol(), strategy="naive"
        )
        assert stats.ripped_segments == 3
        assert stats.retained_segments == 0
        assert stats.similarity == 0.0

    def test_naive_still_connects(self):
        cell = Schematic("c", VIEWDRAW_LIKE.name)
        page = cell.add_page(Rect(0, 0, 640, 480))
        page.add_instance(Instance("U1", source_symbol(), Transform(Point(100, 100))))
        page.add_wire(Wire(
            [Point(20, 40), Point(60, 40), Point(60, 120), Point(100, 120)],
            label="in",
        ))
        replace_component(page, "U1", mapping(), target_symbol(), strategy="naive")
        netlist = extract(cell)
        assert netlist.net("in").terminals == {("U1", "IN")}

    def test_minimal_beats_naive_on_similarity(self):
        def build():
            cell = Schematic("c", VIEWDRAW_LIKE.name)
            page = cell.add_page(Rect(0, 0, 640, 480))
            page.add_instance(Instance("U1", source_symbol(), Transform(Point(100, 100))))
            page.add_wire(Wire(
                [Point(20, 40), Point(60, 40), Point(60, 120), Point(100, 120)],
                label="in",
            ))
            return cell, page

        _, page_min = build()
        minimal = replace_component(page_min, "U1", mapping(), target_symbol())
        _, page_naive = build()
        naive = replace_component(
            page_naive, "U1", mapping(), target_symbol(), strategy="naive"
        )
        assert minimal.ripped_segments < naive.ripped_segments
        assert minimal.similarity > naive.similarity


class TestBatchReport:
    def test_aggregates(self):
        report = BatchReplacementReport()
        cell, page = build_page(
            [Point(40, 120), Point(100, 120)],
            [Point(140, 120), Point(200, 120)],
        )
        report.add(replace_component(page, "U1", mapping(), target_symbol()))
        assert report.replacements == 1
        assert report.total_ripped == 2
        assert 0.0 <= report.mean_similarity <= 1.0

    def test_empty_report(self):
        report = BatchReplacementReport()
        assert report.mean_similarity == 1.0 and report.total_ripped == 0
