"""Tests for bus syntax parsing/translation (paper Section 2)."""

import pytest
from hypothesis import given, strategies as st

from cadinterop.common.diagnostics import Category, IssueLog
from cadinterop.schematic.busnotation import (
    BusRef,
    BusSyntaxError,
    COMPOSER_BUS_SYNTAX,
    VIEWDRAW_BUS_SYNTAX,
    declared_buses_of,
    fold_postfix,
    translate_net_name,
)

VL = VIEWDRAW_BUS_SYNTAX
CD = COMPOSER_BUS_SYNTAX


class TestParsing:
    def test_scalar(self):
        ref = VL.parse("clk")
        assert ref.is_scalar and ref.base == "clk" and ref.width == 1

    def test_explicit_bit(self):
        ref = VL.parse("A<0>")
        assert ref.indices == (0, 0) and ref.is_single_bit

    def test_range(self):
        ref = VL.parse("A<15:0>")
        assert ref.indices == (15, 0) and ref.width == 16

    def test_condensed_requires_declaration(self):
        """Paper: A0 is bit 0 of bus A<0:15> only when A is a declared bus."""
        declared = {"A": (0, 15)}
        assert VL.parse("A0", declared).indices == (0, 0)
        # Without the declaration A0 is just a scalar named A0.
        assert VL.parse("A0").is_scalar

    def test_condensed_out_of_range_is_scalar(self):
        declared = {"A": (0, 15)}
        assert VL.parse("A99", declared).is_scalar

    def test_composer_never_condenses(self):
        """Paper: in Cadence, A0 is not equivalent to A<0>."""
        declared = {"A": (0, 15)}
        assert CD.parse("A0", declared).is_scalar

    def test_postfix_allowed_in_viewdraw(self):
        ref = VL.parse("myBus<0:15>-")
        assert ref.postfix == "-" and ref.indices == (0, 15)

    def test_postfix_rejected_by_composer(self):
        with pytest.raises(BusSyntaxError):
            CD.parse("myBus<0:15>-")

    def test_empty_rejected(self):
        with pytest.raises(BusSyntaxError):
            VL.parse("  ")

    def test_unterminated_subscript(self):
        with pytest.raises(BusSyntaxError):
            VL.parse("A<3")

    def test_nonnumeric_index(self):
        with pytest.raises(BusSyntaxError):
            VL.parse("A<x>")

    def test_illegal_base(self):
        with pytest.raises(BusSyntaxError):
            VL.parse("9lives")


class TestBusRef:
    def test_bits_descending(self):
        assert BusRef("A", (3, 0)).bits() == [3, 2, 1, 0]

    def test_bits_ascending(self):
        assert BusRef("A", (0, 3)).bits() == [0, 1, 2, 3]

    def test_scalar_bits_empty(self):
        assert BusRef("A").bits() == []

    def test_bit_select(self):
        assert BusRef("A", (7, 0)).bit(3).indices == (3, 3)

    def test_bit_select_out_of_range(self):
        with pytest.raises(BusSyntaxError):
            BusRef("A", (7, 0)).bit(9)

    def test_bit_of_scalar(self):
        with pytest.raises(BusSyntaxError):
            BusRef("A").bit(0)


class TestFormatting:
    def test_scalar(self):
        assert CD.format(BusRef("clk")) == "clk"

    def test_single_bit(self):
        assert CD.format(BusRef("A", (0, 0))) == "A<0>"

    def test_range(self):
        assert CD.format(BusRef("A", (15, 0))) == "A<15:0>"

    def test_postfix_render_viewdraw(self):
        assert VL.format(BusRef("x", None, "-")) == "x-"

    def test_postfix_render_composer_raises(self):
        with pytest.raises(BusSyntaxError):
            CD.format(BusRef("x", None, "-"))


class TestFoldPostfix:
    def test_fold_minus(self):
        folded, suffix = fold_postfix(BusRef("myBus", (0, 15), "-"))
        assert folded.base == "myBus_n" and folded.postfix == "" and suffix == "_n"

    def test_no_postfix_untouched(self):
        ref = BusRef("x")
        assert fold_postfix(ref) == (ref, None)


class TestTranslation:
    def test_condensed_to_explicit(self):
        declared = {"A": (0, 15)}
        log = IssueLog()
        out, rules = translate_net_name("A1", VL, CD, declared, log)
        assert out == "A<1>"
        assert any(r.reason.startswith("condensed") for r in rules)
        assert log.by_category(Category.BUS_SYNTAX)

    def test_postfix_folding_keeps_names_unique(self):
        out, rules = translate_net_name("myBus<0:15>-", VL, CD)
        assert out == "myBus_n<0:15>"

    def test_plain_scalar_untouched(self):
        out, rules = translate_net_name("clk", VL, CD)
        assert out == "clk" and rules == []

    def test_rules_record_final_target(self):
        out, rules = translate_net_name("OUT-", VL, CD)
        assert rules and all(r.target == out for r in rules)

    @given(st.from_regex(r"[a-z][a-z0-9_]{0,10}", fullmatch=True),
           st.integers(0, 63), st.integers(0, 63))
    def test_explicit_refs_roundtrip(self, base, msb, lsb):
        text = f"{base}<{msb}:{lsb}>" if msb != lsb else f"{base}<{msb}>"
        out, _ = translate_net_name(text, VL, CD)
        assert out == text

    def test_same_syntax_identity(self):
        out, _ = translate_net_name("A<3>", CD, CD)
        assert out == "A<3>"


class TestDeclaredBuses:
    def test_scan_finds_ranges(self):
        declared = declared_buses_of(["A<0:15>", "clk", "B<7:0>"], VL)
        assert declared == {"A": (0, 15), "B": (7, 0)}

    def test_widens_existing_declaration(self):
        declared = declared_buses_of(["A<0:7>", "A<0:15>"], VL)
        assert declared["A"] == (0, 15)

    def test_preserves_descending_direction(self):
        declared = declared_buses_of(["D<7:0>", "D<15:0>"], VL)
        assert declared["D"] == (15, 0)

    def test_ignores_unparseable(self):
        assert declared_buses_of(["<<bad>>", "A<1:0>"], VL) == {"A": (1, 0)}

    def test_single_bits_not_declarations(self):
        assert declared_buses_of(["A<3>"], VL) == {}


class TestParseMemoization:
    def test_condensed_regex_compiled_at_module_level(self):
        from cadinterop.schematic import busnotation

        assert busnotation._CONDENSED_RE.pattern == r"^([A-Za-z_][A-Za-z_0-9]*?)(\d+)$"

    def test_repeated_parse_returns_cached_ref(self):
        from cadinterop.schematic.busnotation import _parse_memoized

        _parse_memoized.cache_clear()
        first = VL.parse("A<0:15>")
        second = VL.parse("A<0:15>")
        assert first is second  # frozen BusRef shared from the memo
        info = _parse_memoized.cache_info()
        assert info.hits >= 1 and info.misses >= 1

    def test_cache_keyed_on_declared_table(self):
        # "A0" is a scalar when A is undeclared, bit 0 of A when declared —
        # the memo must not conflate the two.
        undeclared = VL.parse("A0")
        declared = VL.parse("A0", {"A": (0, 15)})
        assert undeclared.is_scalar
        assert declared.indices == (0, 0) and declared.base == "A"
        assert VL.parse("A0").is_scalar  # still scalar afterwards

    def test_declared_table_order_is_canonical(self):
        a_first = VL.parse("B3", {"A": (0, 3), "B": (0, 7)})
        b_first = VL.parse("B3", {"B": (0, 7), "A": (0, 3)})
        assert a_first is b_first

    def test_cache_keyed_on_syntax(self):
        # Same text, different dialect objects: condensed refs only resolve
        # under the dialect that allows them.
        declared = {"A": (0, 15)}
        assert VL.parse("A0", declared).indices == (0, 0)
        assert CD.parse("A0", declared).is_scalar

    def test_failed_parse_not_cached_and_still_raises(self):
        for _ in range(2):
            with pytest.raises(BusSyntaxError):
                VL.parse("A<1:0")
